// glitchsim-vet is the project's static-invariant multichecker: the
// internal/analysis suite (hotpathalloc, kernelpoll, typederr, ctxbg)
// packaged as a `go vet -vettool=` plugin.
//
// Two invocation modes:
//
//	go vet -vettool=$(which glitchsim-vet) ./...   # unit-checker protocol
//	glitchsim-vet ./...                            # convenience: re-execs go vet
//
// In the first mode the go command drives the tool once per package,
// passing a *.cfg file describing the compilation unit (files, import
// map, export data); diagnostics go to stderr as file:line:col:
// message and a non-empty set exits 2, which go vet turns into a
// failure. The second mode simply re-invokes `go vet -vettool=<self>`
// with the given package patterns, so CI and developers don't need to
// spell the protocol.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"glitchsim/internal/analysis"
)

func main() {
	args := os.Args[1:]

	// Protocol handshake flags, sent by the go command before any
	// compilation unit: -V=full identifies the tool build (its output
	// keys the vet cache), -flags reports the analyzer flags we accept.
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		exitCode, err := runUnit(args[0], analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "glitchsim-vet: %v\n", err)
			os.Exit(1)
		}
		os.Exit(exitCode)
	}

	// Convenience mode: glitchsim-vet [packages] re-execs go vet with
	// this binary as the vettool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "glitchsim-vet: locating self: %v\n", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "glitchsim-vet: %v\n", err)
		os.Exit(1)
	}
}

// printVersion emits the version line the go command requires from a
// vettool: `<name> version devel comments-go-here buildID=<hex>`. The
// buildID is a content hash of the executable, so rebuilding the tool
// (new analyzers, changed rules) invalidates go vet's result cache.
func printVersion() {
	name, hash := "glitchsim-vet", "unknown"
	if exe, err := os.Executable(); err == nil {
		name = filepath.Base(exe)
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				hash = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", name, hash)
}
