// Benchmark harness: one testing.B per table and figure of the paper,
// plus the ablation studies from DESIGN.md. Each benchmark regenerates
// its artifact per iteration and reports the paper-relevant quantities
// as custom metrics (L/F ratios, transition counts per cycle, power in
// milliwatts), so `go test -bench=.` reproduces the whole evaluation.
package glitchsim_test

import (
	"fmt"
	"testing"

	"glitchsim"
	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/retime"
	"glitchsim/internal/stimulus"
)

// BenchmarkFig3WorstCase regenerates §3.1/Figure 3: the worst-case
// N-transition event of a 4-bit RCA, measured analytically and by event
// simulation.
func BenchmarkFig3WorstCase(b *testing.B) {
	var last glitchsim.WorstCaseResult
	for i := 0; i < b.N; i++ {
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		res, err := glitchsim.WorstCase(4)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.SimSumTransitions), "worstS3_transitions")
	b.ReportMetric(float64(last.SimCarryTransitions), "worstC4_transitions")
	b.ReportMetric(last.Probability, "probability")
}

// BenchmarkFig5RCA regenerates Figure 5: the 16-bit RCA under 4000
// random inputs, analytic and simulated totals.
func BenchmarkFig5RCA(b *testing.B) {
	var last glitchsim.Fig5Result
	for i := 0; i < b.N; i++ {
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		res, err := glitchsim.Figure5(16, 4000, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.AnalyticTotal), "analytic_total")
	b.ReportMetric(float64(last.Sim.Transitions), "sim_total")
	b.ReportMetric(last.Sim.LOverF(), "sim_L/F")
}

// BenchmarkTable1 regenerates Table 1 row by row: array vs wallace,
// 8x8 and 16x16, 500 random inputs, unit delay.
func BenchmarkTable1(b *testing.B) {
	for _, arch := range []string{"array", "wallace"} {
		for _, width := range []int{8, 16} {
			b.Run(fmt.Sprintf("%s_%dx%d", arch, width, width), func(b *testing.B) {
				var last glitchsim.Activity
				for i := 0; i < b.N; i++ {
					nl := circuits.NewArrayMultiplier(width, circuits.Cells)
					if arch == "wallace" {
						nl = circuits.NewWallaceMultiplier(width, circuits.Cells)
					}
					//lint:ignore SA1019 deprecated wrappers keep golden coverage
					act, err := glitchsim.Measure(nl, glitchsim.Config{Cycles: 500})
					if err != nil {
						b.Fatal(err)
					}
					last = act
				}
				b.ReportMetric(float64(last.Useful), "useful")
				b.ReportMetric(float64(last.Useless), "useless")
				b.ReportMetric(last.LOverF(), "L/F")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2: the 8x8 multipliers with
// dsum=dcarry vs dsum=2·dcarry.
func BenchmarkTable2(b *testing.B) {
	for _, arch := range []string{"array", "wallace"} {
		for _, dsum := range []int{1, 2} {
			b.Run(fmt.Sprintf("%s_dsum%d", arch, dsum), func(b *testing.B) {
				nl := circuits.NewArrayMultiplier(8, circuits.Cells)
				if arch == "wallace" {
					nl = circuits.NewWallaceMultiplier(8, circuits.Cells)
				}
				var dm delay.Model = delay.Unit()
				if dsum == 2 {
					dm = delay.FullAdderRatio(2, 1)
				}
				var last glitchsim.Activity
				for i := 0; i < b.N; i++ {
					//lint:ignore SA1019 deprecated wrappers keep golden coverage
					act, err := glitchsim.Measure(nl, glitchsim.Config{Cycles: 500, Delay: dm})
					if err != nil {
						b.Fatal(err)
					}
					last = act
				}
				b.ReportMetric(float64(last.Useless), "useless")
				b.ReportMetric(last.LOverF(), "L/F")
			})
		}
	}
}

// BenchmarkDirectionDetector regenerates the §4.2 study: 4320 random
// inputs through the video direction detector.
func BenchmarkDirectionDetector(b *testing.B) {
	var last glitchsim.DirDetResult
	for i := 0; i < b.N; i++ {
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		res, err := glitchsim.DirectionDetector42(4320, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Useful), "useful")
	b.ReportMetric(float64(last.Useless), "useless")
	b.ReportMetric(last.LOverF(), "L/F")
	b.ReportMetric(last.BalanceLimit, "balance_limit")
}

// BenchmarkTable3 regenerates Table 3: four retimed direction-detector
// variants with the three-component power breakdown.
func BenchmarkTable3(b *testing.B) {
	var rows []glitchsim.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		rows, err = glitchsim.Table3(200, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.TotalMW, fmt.Sprintf("c%d_total_mW", r.Circuit))
		b.ReportMetric(float64(r.FFs), fmt.Sprintf("c%d_ffs", r.Circuit))
	}
}

// BenchmarkFig10 regenerates the Figure 10 sweep and reports the
// optimum point.
func BenchmarkFig10(b *testing.B) {
	var rows []glitchsim.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		rows, err = glitchsim.Figure10(nil, 100, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := rows[0]
	for _, r := range rows {
		if r.TotalMW < best.TotalMW {
			best = r
		}
	}
	b.ReportMetric(float64(best.FFs), "optimum_ffs")
	b.ReportMetric(best.TotalMW, "optimum_total_mW")
	b.ReportMetric(float64(len(rows)), "sweep_points")
}

// BenchmarkAblationInertial measures the transport/inertial gap on the
// direction detector under heterogeneous delays (ablation A1).
func BenchmarkAblationInertial(b *testing.B) {
	var last glitchsim.AblationResult
	for i := 0; i < b.N; i++ {
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		res, err := glitchsim.AblationInertial(300, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.A.Useless), "transport_useless")
	b.ReportMetric(float64(last.B.Useless), "inertial_useless")
}

// BenchmarkAblationZeroDelay quantifies how much a glitch-blind
// probabilistic estimator undershoots the event-driven measurement
// (ablation A2).
func BenchmarkAblationZeroDelay(b *testing.B) {
	var last glitchsim.ZeroDelayComparison
	for i := 0; i < b.N; i++ {
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		res, err := glitchsim.AblationZeroDelay(16, 2000, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.EstimatedPerCycle, "estimated_per_cycle")
	b.ReportMetric(last.MeasuredPerCycle, "measured_per_cycle")
	b.ReportMetric(last.Underestimate(), "underestimate_factor")
}

// BenchmarkAblationGranularity compares FA-cell and gate-level models of
// one RCA (ablation A4).
func BenchmarkAblationGranularity(b *testing.B) {
	var last glitchsim.AblationResult
	for i := 0; i < b.N; i++ {
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		res, err := glitchsim.AblationGranularity(8, 300, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.A.LOverF(), "cells_L/F")
	b.ReportMetric(last.B.LOverF(), "gates_L/F")
}

// BenchmarkSimulatorThroughput measures raw measurement throughput on
// the 16x16 array multiplier (the heaviest Table 1 workload), once per
// kernel: "scalar" pins Lanes=1 (the BENCH_kernel.json trajectory
// workload of PRs 0–2), "lanes64" is the word-parallel default. events/s
// counts classified net transitions per wall-clock second in both cases,
// so the two sub-benchmarks are directly comparable; see internal/sim's
// BenchmarkKernel and BenchmarkWideKernel for kernel-only numbers.
func BenchmarkSimulatorThroughput(b *testing.B) {
	nl := circuits.NewArrayMultiplier(16, circuits.Cells)
	for _, tc := range []struct {
		name  string
		lanes int
	}{
		{"scalar", 1},
		{"lanes64", 64},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var cycles int
			var events uint64
			for i := 0; i < b.N; i++ {
				//lint:ignore SA1019 deprecated wrappers keep golden coverage
				act, err := glitchsim.Measure(nl, glitchsim.Config{Cycles: 100, Warmup: 1, Lanes: tc.lanes})
				if err != nil {
					b.Fatal(err)
				}
				cycles += act.Cycles
				events += act.Transitions
			}
			secs := b.Elapsed().Seconds()
			b.ReportMetric(float64(cycles)/secs, "cycles/s")
			b.ReportMetric(float64(events)/secs, "events/s")
			b.ReportMetric(secs*1e9/float64(cycles), "ns/cycle")
		})
	}
}

// BenchmarkMeasureLanes is the scalar-versus-word-parallel A/B on the
// full Table 1 row workload (500 vectors, unit delay, 16x16 array
// multiplier): the same measurement semantics — 64 lane streams — run
// once on the scalar kernel (Lanes=1 keeps the historical single
// stream for reference) and once on the 64-lane kernel. The interleaved
// BENCH_kernel.json lanes numbers come from this benchmark.
func BenchmarkMeasureLanes(b *testing.B) {
	nl := circuits.NewArrayMultiplier(16, circuits.Cells)
	for _, lanes := range []int{1, 64} {
		b.Run(fmt.Sprintf("lanes%d", lanes), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				//lint:ignore SA1019 deprecated wrappers keep golden coverage
				if _, err := glitchsim.Measure(nl, glitchsim.Config{Cycles: 500, Lanes: lanes}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMeasureLanesNonUniform is the A/B for the wide-event kernel
// on the measurement workload that used to fall back to scalar: a full
// Table 2 heavy row (16x16 array multiplier, 500 vectors, dsum=2·dcarry
// full-adder ratio delays). The A side reconstructs the deleted scalar
// lane-by-lane fallback exactly — the same 64 lane streams and quotas,
// each with its own warm-up, simulated one after another and merged in
// lane order — and asserts the B side (one wide-event measurement)
// reproduces its totals bit-identically. The interleaved
// BENCH_kernel.json wide-event numbers come from this benchmark.
func BenchmarkMeasureLanesNonUniform(b *testing.B) {
	nl := circuits.NewArrayMultiplier(16, circuits.Cells)
	dm := delay.FullAdderRatio(2, 1)
	const cycles, baseSeed = 500, 1
	lanes := glitchsim.MaxLanes

	// The fallback's lane decomposition: splitmix64 seeds drawn from the
	// base seed, cycles split evenly with the first cycles%lanes lanes
	// one longer.
	seeds := make([]uint64, lanes)
	sm := stimulus.NewPRNG(baseSeed)
	for l := range seeds {
		seeds[l] = sm.Uint64()
	}
	scalarFallback := func() (glitchsim.Activity, error) {
		var agg *core.Counter
		for l, seed := range seeds {
			quota := cycles / lanes
			if l < cycles%lanes {
				quota++
			}
			//lint:ignore SA1019 deprecated wrappers keep golden coverage
			counter, err := glitchsim.MeasureDetailed(nl, glitchsim.Config{
				Cycles: quota, Seed: seed, Delay: dm, Lanes: 1,
			})
			if err != nil {
				return glitchsim.Activity{}, err
			}
			if agg == nil {
				agg = counter
			} else if err := agg.Merge(counter); err != nil {
				return glitchsim.Activity{}, err
			}
		}
		return glitchsim.ActivityFromCounter(nl.Name, agg), nil
	}

	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	wide, err := glitchsim.Measure(nl, glitchsim.Config{Cycles: cycles, Seed: baseSeed, Delay: dm, Lanes: lanes})
	if err != nil {
		b.Fatal(err)
	}
	ref, err := scalarFallback()
	if err != nil {
		b.Fatal(err)
	}
	if wide != ref {
		b.Fatalf("wide-event totals diverge from the scalar fallback:\nwide:   %+v\nscalar: %+v", wide, ref)
	}

	b.Run("scalar-fallback", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			act, err := scalarFallback()
			if err != nil {
				b.Fatal(err)
			}
			events += act.Transitions
		}
		secs := b.Elapsed().Seconds()
		b.ReportMetric(float64(events)/secs, "events/s")
	})
	b.Run("wide-event", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			//lint:ignore SA1019 deprecated wrappers keep golden coverage
			act, err := glitchsim.Measure(nl, glitchsim.Config{Cycles: cycles, Seed: baseSeed, Delay: dm, Lanes: lanes})
			if err != nil {
				b.Fatal(err)
			}
			events += act.Transitions
		}
		secs := b.Elapsed().Seconds()
		b.ReportMetric(float64(events)/secs, "events/s")
	})
}

// BenchmarkSequential is the scalar-versus-word-parallel A/B on a
// sequential workload: the pipelined 8x8 array multiplier (91 DFFs, 4
// register levels) measured for 500 vectors under unit delay. Register
// state makes this the case the per-lane packed DFF planes exist for:
// the A side reconstructs the 64-lane scalar decomposition exactly
// (same splitmix64 lane seeds and cycle quotas, each lane's registers
// flushed by its own warm-up, merged in lane order) and the benchmark
// asserts the B side (one lockstep wide measurement) reproduces its
// totals bit-identically before timing. The interleaved
// BENCH_kernel.json sequential numbers come from this benchmark.
func BenchmarkSequential(b *testing.B) {
	nl := circuits.NewPipelinedMultiplier(8, 2, circuits.Cells)
	const cycles, baseSeed = 500, 1
	lanes := glitchsim.MaxLanes

	seeds := make([]uint64, lanes)
	sm := stimulus.NewPRNG(baseSeed)
	for l := range seeds {
		seeds[l] = sm.Uint64()
	}
	scalarFallback := func() (glitchsim.Activity, error) {
		var agg *core.Counter
		for l, seed := range seeds {
			quota := cycles / lanes
			if l < cycles%lanes {
				quota++
			}
			//lint:ignore SA1019 deprecated wrappers keep golden coverage
			counter, err := glitchsim.MeasureDetailed(nl, glitchsim.Config{
				Cycles: quota, Seed: seed, Lanes: 1,
			})
			if err != nil {
				return glitchsim.Activity{}, err
			}
			if agg == nil {
				agg = counter
			} else if err := agg.Merge(counter); err != nil {
				return glitchsim.Activity{}, err
			}
		}
		return glitchsim.ActivityFromCounter(nl.Name, agg), nil
	}

	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	wide, err := glitchsim.Measure(nl, glitchsim.Config{Cycles: cycles, Seed: baseSeed, Lanes: lanes})
	if err != nil {
		b.Fatal(err)
	}
	ref, err := scalarFallback()
	if err != nil {
		b.Fatal(err)
	}
	if wide != ref {
		b.Fatalf("wide sequential totals diverge from the scalar lanes:\nwide:   %+v\nscalar: %+v", wide, ref)
	}

	b.Run("scalar-lanes", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			act, err := scalarFallback()
			if err != nil {
				b.Fatal(err)
			}
			events += act.Transitions
		}
		secs := b.Elapsed().Seconds()
		b.ReportMetric(float64(events)/secs, "events/s")
	})
	b.Run("wide", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			//lint:ignore SA1019 deprecated wrappers keep golden coverage
			act, err := glitchsim.Measure(nl, glitchsim.Config{Cycles: cycles, Seed: baseSeed, Lanes: lanes})
			if err != nil {
				b.Fatal(err)
			}
			events += act.Transitions
		}
		secs := b.Elapsed().Seconds()
		b.ReportMetric(float64(events)/secs, "events/s")
	})
}

// BenchmarkMeasureMany measures the parallel batch layer: a 16-seed
// study of the 8x8 array multiplier sharded across all CPUs, the
// many-scenario workload the batch API exists for.
func BenchmarkMeasureMany(b *testing.B) {
	nl := circuits.NewArrayMultiplier(8, circuits.Cells)
	jobs := make([]glitchsim.MeasureJob, 16)
	for i := range jobs {
		jobs[i] = glitchsim.MeasureJob{
			Netlist: nl,
			Config:  glitchsim.Config{Cycles: 100, Warmup: 1, Seed: uint64(i + 1)},
		}
	}
	b.ResetTimer()
	var cycles int
	for i := 0; i < b.N; i++ {
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		for _, r := range glitchsim.MeasureMany(jobs, 0) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			cycles += r.Activity.Cycles
		}
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkRetimeDirectionDetector measures the retiming engine itself:
// graph extraction, minimum-period search and netlist reconstruction.
func BenchmarkRetimeDirectionDetector(b *testing.B) {
	base := glitchsim.NewDirectionDetector(8, true)
	b.ResetTimer()
	var regs int
	for i := 0; i < b.N; i++ {
		res, err := retime.Pipeline(base, delay.Unit(), 2)
		if err != nil {
			b.Fatal(err)
		}
		regs = res.Registers
	}
	b.ReportMetric(float64(regs), "registers")
}
