package glitchsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"glitchsim/internal/registry"
	"glitchsim/netlist"
	"glitchsim/verilog"
)

// Circuit is a reference to a gate-level circuit, resolvable by an
// Engine to a *netlist.Netlist. It makes arbitrary user circuits
// first-class across every measurement entry point: the same request
// field accepts a built-in registry name, a netlist built with the
// public netlist.Builder, structural Verilog source, or the JSON wire
// format. The zero Circuit is empty (IsZero reports true); construct
// references with CircuitNamed, CircuitFromNetlist, CircuitFromVerilog,
// CircuitFromJSON or CircuitFromFile.
//
// Source-form references (Verilog/JSON) parse lazily on first
// resolution and memoize the result, so a Circuit value reused across
// jobs parses once; the Engine's fingerprint-keyed cache then makes
// repeated measurements share one compiled form no matter how the
// circuit was described.
type Circuit struct {
	format  circuitFormat
	name    string
	netlist *netlist.Netlist
	memo    *circuitMemo
}

type circuitFormat uint8

const (
	circuitZero circuitFormat = iota
	circuitName
	circuitNetlist
	circuitVerilog
	circuitJSON
)

// circuitMemo caches the parse of a source-form Circuit. Copies of the
// Circuit value share the memo, so each reference parses at most once;
// the source bytes are released after the parse (srcLen keeps String
// informative), so a long-lived Circuit does not pin a large upload.
type circuitMemo struct {
	src    []byte
	srcLen int
	once   sync.Once
	n      *netlist.Netlist
	err    error
}

func newCircuitMemo(src []byte) *circuitMemo {
	return &circuitMemo{src: src, srcLen: len(src)}
}

// parse runs the format's parser exactly once and drops the source.
func (m *circuitMemo) parse(f func([]byte) (*netlist.Netlist, error)) (*netlist.Netlist, error) {
	m.once.Do(func() {
		m.n, m.err = f(m.src)
		m.src = nil
	})
	return m.n, m.err
}

// CircuitNamed references a circuit by name: one of the built-in
// registry circuits (see BuiltinCircuits) or a name provided by a
// custom source registered with WithCircuitSource.
func CircuitNamed(name string) Circuit {
	return Circuit{format: circuitName, name: name}
}

// CircuitFromNetlist references an already-built netlist, e.g. the
// result of a netlist.Builder.
func CircuitFromNetlist(n *netlist.Netlist) Circuit {
	return Circuit{format: circuitNetlist, netlist: n}
}

// CircuitFromVerilog references a circuit described as structural
// Verilog source in the subset of package glitchsim/verilog.
func CircuitFromVerilog(src []byte) Circuit {
	return Circuit{format: circuitVerilog, memo: newCircuitMemo(src)}
}

// CircuitFromJSON references a circuit described in the netlist JSON
// wire format (netlist.WriteJSON / ReadJSON).
func CircuitFromJSON(src []byte) Circuit {
	return Circuit{format: circuitJSON, memo: newCircuitMemo(src)}
}

// CircuitFromFile reads a circuit description from disk, selecting the
// format by extension: .v/.sv/.verilog parse as structural Verilog,
// everything else as netlist JSON.
func CircuitFromFile(path string) (Circuit, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return Circuit{}, err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".v", ".sv", ".verilog":
		return CircuitFromVerilog(src), nil
	default:
		return CircuitFromJSON(src), nil
	}
}

// IsZero reports whether the Circuit is the empty reference.
func (c Circuit) IsZero() bool { return c.format == circuitZero }

// String describes the reference (not the resolved circuit).
func (c Circuit) String() string {
	switch c.format {
	case circuitName:
		return fmt.Sprintf("circuit %q", c.name)
	case circuitNetlist:
		if c.netlist != nil {
			return fmt.Sprintf("netlist %q", c.netlist.Name)
		}
		return "netlist <nil>"
	case circuitVerilog:
		return fmt.Sprintf("verilog source (%d bytes)", c.memo.srcLen)
	case circuitJSON:
		return fmt.Sprintf("json netlist (%d bytes)", c.memo.srcLen)
	}
	return "empty circuit"
}

// resolve materializes the reference. Named references go through the
// engine's source chain; source-form references parse once and memoize.
func (c Circuit) resolve(e *Engine) (*netlist.Netlist, error) {
	switch c.format {
	case circuitNetlist:
		if c.netlist == nil {
			return nil, fmt.Errorf("glitchsim: CircuitFromNetlist(nil)")
		}
		return c.netlist, nil
	case circuitName:
		return e.resolveName(c.name)
	case circuitVerilog:
		return c.memo.parse(func(src []byte) (*netlist.Netlist, error) {
			return verilog.Parse(bytes.NewReader(src))
		})
	case circuitJSON:
		return c.memo.parse(func(src []byte) (*netlist.Netlist, error) {
			return netlist.ReadJSON(bytes.NewReader(src))
		})
	}
	return nil, fmt.Errorf("glitchsim: empty circuit reference")
}

// CircuitSource resolves circuit names. Sources registered on an Engine
// with WithCircuitSource are consulted in registration order before the
// built-in registry, so a service can expose uploaded circuits (or a
// test can inject synthetic ones) under the same naming scheme as the
// built-ins. Implementations must be safe for concurrent use.
type CircuitSource interface {
	// Resolve returns the netlist for name. The boolean reports whether
	// this source knows the name at all; (nil, false, nil) hands
	// resolution to the next source in the chain.
	Resolve(name string) (*netlist.Netlist, bool, error)
	// Names lists the identifiers this source can currently resolve.
	Names() []string
}

// WithCircuitSource appends a custom circuit source to the engine's
// resolution chain. Sources are consulted in registration order, ahead
// of the built-in registry.
func WithCircuitSource(s CircuitSource) EngineOption {
	return func(e *Engine) { e.sources = append(e.sources, s) }
}

// Resolve materializes a Circuit reference: named circuits through the
// engine's source chain (custom sources, then the built-in registry),
// source-form circuits by parsing (memoized per reference). The
// resolved netlist feeds any measurement entry point, or the Engine
// directly via the request Circuit fields.
func (e *Engine) Resolve(c Circuit) (*netlist.Netlist, error) {
	return c.resolve(e)
}

// ErrUnknownCircuit marks a named-circuit resolution failure: no
// registered CircuitSource and no built-in knows the name. Callers use
// errors.Is to tell "the name does not exist" (a client error, 404)
// apart from a source that knew the name but failed to produce it (an
// execution failure, possibly transient).
var ErrUnknownCircuit = errors.New("glitchsim: unknown circuit")

// resolveName walks the engine's source chain.
func (e *Engine) resolveName(name string) (*netlist.Netlist, error) {
	for _, s := range e.sources {
		n, ok, err := s.Resolve(name)
		if err != nil {
			return nil, err
		}
		if ok {
			return n, nil
		}
	}
	n, err := registry.Build(name)
	if err != nil {
		return nil, fmt.Errorf("%w %q (available: %s)",
			ErrUnknownCircuit, name, strings.Join(e.CircuitNames(), ", "))
	}
	return n, nil
}

// CircuitNames returns the sorted union of every name the engine can
// resolve: the built-in registry plus all registered circuit sources.
func (e *Engine) CircuitNames() []string {
	names := registry.Names()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, s := range e.sources {
		for _, n := range s.Names() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// BuiltinCircuits returns the sorted names of the built-in benchmark
// circuits every Engine resolves (the shared catalogue behind the CLI
// -circuit flags and the service's circuit parameter).
func BuiltinCircuits() []string { return registry.Names() }

// requestNetlist resolves the two ways a request can name its circuit:
// the deprecated explicit *netlist.Netlist wins when set, otherwise the
// Circuit reference is resolved through the engine.
func (e *Engine) requestNetlist(nl *netlist.Netlist, c Circuit) (*netlist.Netlist, error) {
	if nl != nil {
		return nl, nil
	}
	if c.IsZero() {
		return nil, fmt.Errorf("glitchsim: request names no circuit (set Circuit or the deprecated Netlist field)")
	}
	return c.resolve(e)
}

// MeasureCircuit measures a circuit reference under the configuration:
// shorthand for Measure with a MeasureRequest carrying only a Circuit.
func (e *Engine) MeasureCircuit(ctx context.Context, c Circuit, cfg Config) (Activity, error) {
	return e.Measure(ctx, MeasureRequest{Circuit: c, Config: cfg})
}
