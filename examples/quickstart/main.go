// Quickstart: build a ripple-carry adder, measure its transition
// activity under random inputs, classify useful vs useless transitions,
// and compare against the paper's closed-form prediction (eqs. 2–7).
package main

import (
	"context"
	"fmt"
	"log"

	"glitchsim"
	"glitchsim/internal/analytic"
)

func main() {
	const width = 16
	const cycles = 4000

	// 1. Build the paper's §3 circuit: an N-bit ripple-carry adder made
	// of full-adder cells.
	adder := glitchsim.NewRCA(width)
	fmt.Print(adder.Summary())

	// 2. Simulate it with unit gate delays under random stimulus and
	// count transitions, classifying each cycle's count by the parity
	// rule: odd -> one useful + rest useless, even -> all useless.
	activity, err := glitchsim.DefaultEngine().Measure(context.Background(), glitchsim.MeasureRequest{
		Circuit: glitchsim.CircuitFromNetlist(adder),
		Config:  glitchsim.Config{Cycles: cycles, Seed: 2025},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured:  %v\n", activity)

	// 3. Compare with the closed-form prediction: for a 16-bit adder and
	// 4000 vectors the paper reports 119002 total transitions, 63334
	// useful and 55668 useless (L/F = 0.88).
	pred := analytic.PredictRCA(width, cycles)
	total, useful, useless := pred.RoundedTotals()
	fmt.Printf("predicted: total=%d useful=%d useless=%d L/F=%.2f\n",
		total, useful, useless, float64(useless)/float64(useful))

	// 4. The punchline of the paper: even in this small adder almost
	// half of all switching activity is useless glitching.
	fmt.Printf("\n%.0f%% of all transitions are glitches; balancing delays could cut\n"+
		"combinational activity by a factor of %.2f.\n",
		100*float64(activity.Useless)/float64(activity.Transitions),
		activity.BalanceLimitFactor())
}
