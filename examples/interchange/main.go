// Interchange: move circuits between glitchsim and external tools. A
// multiplier is exported as structural Verilog, re-imported, checked for
// identical activity, and also dumped as JSON — the round-trip workflow
// for analyzing third-party netlists with the paper's transition
// classification.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"glitchsim"
)

func main() {
	mult := glitchsim.NewWallaceMultiplier(8)

	// 1. Export to structural Verilog (gate primitives + a helper
	// library for compound cells and flipflops).
	var v bytes.Buffer
	if err := glitchsim.ExportVerilog(&v, mult); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("wallace8.v", v.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote wallace8.v (%d bytes)\n", v.Len())

	// 2. Re-import and verify the circuit is behaviorally identical by
	// comparing classified activity under the same stimulus.
	back, err := glitchsim.ImportVerilog(bytes.NewReader(v.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	cfg := glitchsim.Config{Cycles: 500, Seed: 7}
	engine := glitchsim.DefaultEngine()
	ctx := context.Background()
	orig, err := engine.Measure(ctx, glitchsim.MeasureRequest{Circuit: glitchsim.CircuitFromNetlist(mult), Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	imported, err := engine.Measure(ctx, glitchsim.MeasureRequest{Circuit: glitchsim.CircuitFromNetlist(back), Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: %v\n", orig)
	fmt.Printf("imported: %v\n", imported)
	if orig.Transitions != imported.Transitions || orig.Useless != imported.Useless {
		log.Fatal("round trip changed the activity profile!")
	}
	fmt.Println("activity identical through the Verilog round trip.")

	// 3. JSON export for custom tooling.
	f, err := os.Create("wallace8.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := back.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote wallace8.json")
}
