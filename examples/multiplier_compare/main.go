// Multiplier comparison: the paper's §4 delay-imbalance study. The array
// multiplier's long, skewed carry chains glitch heavily, while the
// balanced Wallace tree barely glitches at all — and making the sum path
// twice as slow as the carry path (the realistic case) makes both worse.
package main

import (
	"context"
	"fmt"
	"log"

	"glitchsim"
	"glitchsim/internal/circuits"
	"glitchsim/internal/delay"
	"glitchsim/internal/report"
	"glitchsim/netlist"
)

func main() {
	const cycles = 500 // the paper's Table 1 run length
	engine := glitchsim.DefaultEngine()
	ctx := context.Background()

	fmt.Println("=== Table 1: architecture comparison, unit delay ===")
	tb := report.NewTable("", "architecture", "size", "cells", "depth", "total", "useful", "useless", "L/F")
	for _, width := range []int{4, 8, 12, 16} {
		for _, arch := range []string{"array", "wallace"} {
			n := build(arch, width)
			act, err := engine.Measure(ctx, glitchsim.MeasureRequest{
				Circuit: glitchsim.CircuitFromNetlist(n),
				Config:  glitchsim.Config{Cycles: cycles},
			})
			if err != nil {
				log.Fatal(err)
			}
			tb.AddRowf(arch, fmt.Sprintf("%dx%d", width, width),
				n.NumCells(), n.LogicDepth(),
				act.Transitions, act.Useful, act.Useless, act.LOverF())
		}
	}
	fmt.Println(tb)

	fmt.Println("=== Table 2: sum/carry delay imbalance (8x8) ===")
	tb2 := report.NewTable("", "architecture", "delay model", "useful", "useless", "L/F")
	for _, arch := range []string{"array", "wallace"} {
		n := build(arch, 8)
		for _, dm := range []delay.Model{delay.Unit(), delay.FullAdderRatio(2, 1)} {
			act, err := engine.Measure(ctx, glitchsim.MeasureRequest{
				Circuit: glitchsim.CircuitFromNetlist(n),
				Config:  glitchsim.Config{Cycles: cycles, Delay: dm},
			})
			if err != nil {
				log.Fatal(err)
			}
			tb2.AddRowf(arch, dm.Name(), act.Useful, act.Useless, act.LOverF())
		}
	}
	fmt.Println(tb2)

	fmt.Println("Conclusion: decreasing the number of unbalanced delay paths in the")
	fmt.Println("architecture significantly reduces the number of useless transitions.")
}

func build(arch string, width int) *netlist.Netlist {
	if arch == "wallace" {
		return circuits.NewWallaceMultiplier(width, circuits.Cells)
	}
	return circuits.NewArrayMultiplier(width, circuits.Cells)
}
