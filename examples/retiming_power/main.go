// Retiming for power: the paper's §5 experiment. A video direction
// detector is pipelined ever deeper by retiming; each added rank of
// flipflops balances more delay paths and kills more glitches, cutting
// combinational power — but flipflop and clock power grow with the
// register count, so total power has an interior minimum: there is an
// optimum retiming for power dissipation.
package main

import (
	"context"
	"fmt"
	"log"

	"glitchsim"
	"glitchsim/internal/delay"
	"glitchsim/internal/report"
	"glitchsim/internal/retime"
)

func main() {
	// The Phideo direction detector with registered inputs: the paper's
	// circuit 1 (48 flipflops).
	base := glitchsim.NewDirectionDetector(8, true)
	cp := retime.MinPeriodOf(base, delay.Unit())
	_ = cp

	fmt.Println("sweeping retiming target periods (paper Table 3 / Figure 10)...")
	res, err := glitchsim.DefaultEngine().Figure10(context.Background(),
		glitchsim.ExperimentRequest{Cycles: 150, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	rows := res.Points

	tb := report.NewTable("power vs pipelining depth",
		"period", "latency", "#ff", "logic mW", "ff mW", "clock mW", "total mW", "L/F")
	best := 0
	for i, r := range rows {
		tb.AddRowf(r.Period, r.Latency, r.FFs, r.LogicMW, r.FlipflopMW, r.ClockMW, r.TotalMW, r.LOverF)
		if r.TotalMW < rows[best].TotalMW {
			best = i
		}
	}
	fmt.Println(tb)

	labels := make([]string, len(rows))
	series := []report.Series{{Name: "total"}, {Name: "logic"}, {Name: "ff+clock"}}
	for i, r := range rows {
		labels[i] = fmt.Sprintf("%d ff", r.FFs)
		series[0].Values = append(series[0].Values, r.TotalMW)
		series[1].Values = append(series[1].Values, r.LogicMW)
		series[2].Values = append(series[2].Values, r.FlipflopMW+r.ClockMW)
	}
	fmt.Println(report.Chart("power (mW) vs flipflop count", labels, series, 44))

	opt := rows[best]
	fmt.Printf("optimum: %d flipflops (clock period %d, +%d cycles latency) at %.1f mW total —\n",
		opt.FFs, opt.Period, opt.Latency, opt.TotalMW)
	fmt.Printf("%.1fx less combinational power than the unpipelined circuit (%.1f -> %.1f mW).\n",
		rows[0].LogicMW/opt.LogicMW, rows[0].LogicMW, opt.LogicMW)
	fmt.Println("\nAs the paper concludes: an optimum retiming for power dissipation exists.")
}
