// Waveforms: build a custom circuit with the netlist builder API, watch
// its glitches with the event-driven simulator, and dump a VCD waveform
// that any viewer (GTKWave, Surfer) can open to see the glitch trains
// ripple through an adder.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"glitchsim"
	"glitchsim/internal/circuits"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/vcd"
	"glitchsim/netlist"
)

func main() {
	// 1. A custom circuit through the builder API: a 1-bit "pulse
	// generator" (static-hazard circuit) next to a 4-bit adder slice.
	b := netlist.NewBuilder("demo")
	en := b.Input("en")
	hazard := b.And(en, b.Not(en)) // statically 0, glitches on en↑
	b.Output("hazard", hazard)

	a := b.InputBus("a", 4)
	c := b.InputBus("c", 4)
	sum, cout := circuits.RippleAdd(b, circuits.Cells, a, c, b.Const(0))
	b.OutputBus("sum", sum)
	b.Output("cout", cout)

	n, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(n.Summary())

	// 2. Dump a waveform while simulating with unit delays.
	f, err := os.Create("demo.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	period := n.LogicDepth() + 2
	wave, err := vcd.New(f, n, nil, period)
	if err != nil {
		log.Fatal(err)
	}

	s := sim.New(n, sim.Options{})
	s.AttachMonitor(wave)

	// Directed stimulus: toggle en every cycle while the adder counts
	// through a worst-case carry ripple (a=1111, c alternating 0/1).
	const cycles = 12
	pi := make(logic.Vector, n.InputWidth())
	for i := 0; i < cycles; i++ {
		pi[0] = logic.FromBit(uint64(i)) // en
		copy(pi[1:5], logic.VectorFromUint(0b1111, 4))
		copy(pi[5:9], logic.VectorFromUint(uint64(i%2), 4))
		if err := s.Step(pi); err != nil {
			log.Fatal(err)
		}
	}
	if err := wave.Flush(cycles); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote demo.vcd (%d cycles, %d time units per cycle)\n", cycles, period)

	// 3. Quantify what the waveform shows.
	act, err := glitchsim.DefaultEngine().Measure(context.Background(), glitchsim.MeasureRequest{
		Circuit: glitchsim.CircuitFromNetlist(n),
		Config: glitchsim.Config{
			Cycles: 1000,
			Source: stimulus.NewRandom(n.InputWidth(), 42),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under random stimulus: %v\n", act)
	fmt.Println("open demo.vcd in a waveform viewer to watch the carry-chain glitches.")
}
