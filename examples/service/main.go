// The service example starts a glitchsimd-style HTTP server in-process
// on a loopback port and drives it as a client: a health check, a plain
// measurement, a multi-seed sweep with NDJSON progress streaming, and a
// Table 1 experiment — the full zero-to-result tour of the service API.
//
// Run it with:
//
//	go run ./examples/service
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"glitchsim"
	"glitchsim/internal/service"
)

func main() {
	// One Engine shared by every request the server will see: one
	// compiled-netlist cache, one worker-pool configuration.
	engine := glitchsim.NewEngine(glitchsim.WithCacheSize(32))
	srv := &http.Server{Handler: service.New(engine, service.WithBaseContext(context.Background()))}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("glitchsim service listening on %s\n\n", base)

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return strings.TrimSpace(string(b))
	}
	post := func(path, body string) string {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return strings.TrimSpace(string(b))
	}

	fmt.Println("--- GET /healthz ---")
	fmt.Println(get("/healthz"))

	fmt.Println("\n--- POST /v1/measure {circuit: wallace8} ---")
	fmt.Println(post("/v1/measure", `{"circuit":"wallace8","cycles":200,"seed":1}`))

	fmt.Println("\n--- GET /v1/measure?...&seeds=1,2,3,4&stream=1 (NDJSON progress) ---")
	resp, err := http.Get(base + "/v1/measure?circuit=rca16&cycles=100&seeds=1,2,3,4&stream=1")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	resp.Body.Close()

	fmt.Println("\n--- POST /v1/experiments/table1 ---")
	fmt.Println(post("/v1/experiments/table1", `{"cycles":100}`))

	fmt.Println("\n--- engine cache after the tour ---")
	fmt.Println(get("/healthz"))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
