// Command customcircuit demonstrates the first-class circuit API: the
// same user-defined circuit is described three ways — built with the
// public netlist.Builder, as structural Verilog source, and as the JSON
// wire format — and all three resolve to bit-identical measurements
// through one Engine, sharing a single compiled-netlist cache entry
// (their structural fingerprints are equal).
//
// Run with:
//
//	go run ./examples/customcircuit
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"glitchsim"
	"glitchsim/netlist"
	"glitchsim/verilog"
)

// buildParity constructs a 4-bit parity tree with a registered output:
// small, but deep enough to glitch.
func buildParity() *netlist.Netlist {
	b := netlist.NewBuilder("parity4")
	in := b.InputBus("d", 4)
	p01 := b.Xor(in[0], in[1])
	p23 := b.Xor(in[2], in[3])
	p := b.Xor(p01, p23)
	q := b.DFF(p)
	b.Output("parity", p)
	b.Output("parity_q", q)
	return b.MustBuild()
}

func main() {
	ctx := context.Background()
	engine := glitchsim.NewEngine()
	cfg := glitchsim.Config{Cycles: 500, Seed: 42}

	// One circuit, three descriptions.
	built := buildParity()
	var vsrc, jsrc strings.Builder
	if err := verilog.Write(&vsrc, built); err != nil {
		log.Fatal(err)
	}
	if err := built.WriteJSON(&jsrc); err != nil {
		log.Fatal(err)
	}
	refs := []struct {
		how string
		ref glitchsim.Circuit
	}{
		{"netlist.Builder", glitchsim.CircuitFromNetlist(built)},
		{"Verilog source", glitchsim.CircuitFromVerilog([]byte(vsrc.String()))},
		{"JSON netlist", glitchsim.CircuitFromJSON([]byte(jsrc.String()))},
	}

	fmt.Printf("measuring %q three ways (%d cycles, seed %d):\n\n", built.Name, cfg.Cycles, cfg.Seed)
	for _, r := range refs {
		act, err := engine.MeasureCircuit(ctx, r.ref, cfg)
		if err != nil {
			log.Fatalf("%s: %v", r.how, err)
		}
		fmt.Printf("  %-16s %v\n", r.how+":", act)
	}

	cs := engine.CacheStats()
	fmt.Printf("\ncompiled-netlist cache: %d miss, %d hits — all three descriptions\n", cs.Misses, cs.Hits)
	fmt.Printf("share the fingerprint %.16s…\n\n", built.Fingerprint())

	// Built-in circuits resolve through the same reference type.
	act, err := engine.MeasureCircuit(ctx, glitchsim.CircuitNamed("rca8"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built-ins use the same API: %v\n", act)
	fmt.Printf("available names: %s\n", strings.Join(engine.CircuitNames(), ", "))
}
