// Package glitchsim reproduces "Analysis and Reduction of Glitches in
// Synchronous Networks" (Leijten, van Meerbergen, Jess; DATE 1995): an
// event-driven gate-level simulator with transition counting and parity
// evaluation that classifies every signal transition as useful or
// useless (glitching), closed-form activity analysis of ripple-carry
// adders, a Leiserson–Saxe retiming engine for glitch reduction, and a
// three-component power model (combinational logic / flipflops / clock).
//
// This root package is the high-level API: it wires stimulus, simulator,
// activity counter and power model together, and exposes one driver per
// experiment of the paper (Figure 5, Tables 1–3, the §4.2 direction
// detector study, Figure 10, and the §3.1 worst case).
package glitchsim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/power"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// Activity summarizes classified transition counts of one measurement,
// the quantities the paper's Tables 1 and 2 report.
type Activity struct {
	Circuit string
	Cycles  int
	// Transitions = Useful + Useless.
	Transitions, Useful, Useless uint64
	// Glitches counts pairs of consecutive useless transitions.
	Glitches uint64
	// Rising counts power-consuming (0→1) transitions.
	Rising uint64
}

// LOverF returns the paper's useless/useful ratio L/F.
func (a Activity) LOverF() float64 {
	if a.Useful == 0 {
		return 0
	}
	return float64(a.Useless) / float64(a.Useful)
}

// BalanceLimitFactor returns 1 + L/F: the factor by which combinational
// activity would drop if all delay paths were perfectly balanced.
func (a Activity) BalanceLimitFactor() float64 { return 1 + a.LOverF() }

// String renders the activity compactly.
func (a Activity) String() string {
	return fmt.Sprintf("%s: %d cycles, total=%d useful=%d useless=%d L/F=%.2f",
		a.Circuit, a.Cycles, a.Transitions, a.Useful, a.Useless, a.LOverF())
}

// ExplicitZero requests an actual count of zero for Config fields whose
// zero value selects a default (Cycles, Warmup). Any negative value
// works; the constant documents the intent:
//
//	Config{Warmup: glitchsim.ExplicitZero} // measure from reset, no warm-up
const ExplicitZero = -1

// Config controls a measurement run.
type Config struct {
	// Cycles is the number of measured cycles. 0 selects the default of
	// 500, the paper's Table 1 run length; ExplicitZero runs none.
	Cycles int
	// Warmup cycles run before measurement starts, flushing X values and
	// pipeline fill. 0 selects the default: 8 cycles, extended on
	// sequential netlists to SequentialLevels+1 when the register
	// pipeline is deeper than that, so every DFF holds flushed state
	// before counting starts. ExplicitZero disables warm-up so start-up
	// activity is measured too.
	Warmup int
	// Seed selects the random stimulus stream (default 1).
	Seed uint64
	// Delay is the propagation-delay model (default unit delay).
	Delay delay.Model
	// Inertial selects inertial instead of transport delay handling.
	Inertial bool
	// Source overrides the default uniform random stimulus.
	Source stimulus.Source
	// Lanes selects how many independent seeded stimulus streams the
	// measured Cycles are distributed over (see wide.go): all lanes
	// advance in one word-parallel simulation, evaluating every gate for
	// up to 64 patterns at once — under every delay model. Uniform
	// models ride the lockstep wavefront kernel (in either delay mode:
	// inertial and transport coincide under uniform delay), everything
	// else (the full-adder sum/carry ratios and per-type models of
	// Tables 2 and 3, zero delay) rides the lane-masked wide-event
	// kernel; both are bit-identical to running the L streams one after
	// another on the scalar kernel. 0 selects the engine default
	// (DefaultLanes, normally MaxLanes); 1 is the historical
	// single-stream measurement; values are capped at MaxLanes. Ignored
	// when an explicit Source is set (external sources are inherently
	// single-stream) or when at most one cycle is measured.
	//
	// Lane decomposition keeps stimulus streams invariant across delay
	// models: Table 2's unit and dsum=2·dcarry rows see identical vector
	// streams, keeping their useful counts equal. Each lane pays its own
	// Warmup (e.g. 64×8 warm-up cycles for a default decomposition, all
	// word-parallel); set Lanes=1 to reproduce pre-lanes single-stream
	// numbers exactly. Engine.SelectedKernel reports the resulting
	// kernel choice.
	Lanes int
	// Budget bounds the measurement's resource consumption; the zero
	// value is unlimited. Event and wall-clock trips abort the run with
	// a *BudgetError AND return the partial counter accumulated through
	// the last completed cycle boundary; the memory bound rejects the
	// request at admission, before compilation. See Budget.
	Budget Budget
	// CheckpointEvery, when > 0, runs the measurement in chunks of that
	// many word-parallel cycles: at every chunk boundary (except the
	// final one) the partial counter and kernel state fold into a
	// MeasureCheckpoint handed to CheckpointSink. Chunk boundaries are
	// pure observation points — they never perturb the simulation, so
	// checkpointed and plain runs are bit-identical. Requires the
	// lane-decomposed word-parallel path (no explicit Source, Lanes > 1,
	// Cycles > 1); other paths fail with ErrCheckpointUnsupported.
	CheckpointEvery int
	// CheckpointSink receives each chunk boundary's checkpoint; nil
	// disables capture (CheckpointEvery then only shapes the loop).
	// Returning ErrStopAtCheckpoint stops the measurement cleanly at
	// the boundary — see CheckpointSink's doc.
	CheckpointSink CheckpointSink
	// Resume continues a measurement from a previously captured
	// checkpoint instead of starting at cycle zero: the kernel state,
	// counter totals and stimulus position are restored, and the
	// remaining cycles run on the identical per-lane seed streams. The
	// checkpoint must match this configuration exactly (fingerprint,
	// cycles, lanes, seed, warm-up, delay model, mode) or the
	// measurement fails with ErrCheckpointMismatch.
	Resume *MeasureCheckpoint
}

func (c Config) withDefaults(n *netlist.Netlist) Config {
	switch {
	case c.Cycles == 0:
		c.Cycles = 500
	case c.Cycles < 0: // ExplicitZero
		c.Cycles = 0
	}
	switch {
	case c.Warmup == 0:
		c.Warmup = 8
		if n.NumDFFs() > 0 {
			if lv := n.SequentialLevels() + 1; lv > c.Warmup {
				c.Warmup = lv
			}
		}
	case c.Warmup < 0: // ExplicitZero
		c.Warmup = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Delay == nil {
		c.Delay = delay.Unit()
	}
	if c.Source == nil {
		c.Source = stimulus.NewRandom(n.InputWidth(), c.Seed)
	}
	return c
}

// MeasureDetailed simulates the netlist under the configuration and
// returns the attached activity counter with per-net statistics.
//
// Deprecated: use DefaultEngine().MeasureDetailed (or your own Engine)
// to get compiled-netlist caching and context cancellation. This wrapper
// remains bit-identical to the equivalent Engine call; like every
// measurement it uses the process-default lane decomposition (see
// Config.Lanes — SetDefaultLanes(1) restores the pre-lanes
// single-stream numbers).
func MeasureDetailed(n *netlist.Netlist, cfg Config) (*core.Counter, error) {
	return DefaultEngine().MeasureDetailed(context.Background(), MeasureRequest{Netlist: n, Config: cfg})
}

// measureCompiled is the measurement core shared by the Engine's entry
// points: the compiled netlist may be shared across goroutines,
// everything else is per-call state. ctx is checked between cycles and,
// through the kernel's Cancel hook, periodically inside the event loop,
// so cancellation lands promptly even mid-cycle on large circuits.
// lanes is the resolved lane count (see Engine.laneCount): seed-driven
// measurements of more than one cycle decompose into that many parallel
// stimulus streams, riding the word-parallel kernel when the delay model
// allows (wide.go); everything else takes the single-stream path.
func measureCompiled(ctx context.Context, c *sim.Compiled, cfg Config, lanes int) (*core.Counter, error) {
	n := c.Netlist()
	split := lanes > 1 && cfg.Source == nil
	cfg = cfg.withDefaults(n)
	if cfg.Source.Width() != n.InputWidth() {
		return nil, fmt.Errorf("glitchsim: stimulus width %d, circuit %q has %d inputs",
			cfg.Source.Width(), n.Name, n.InputWidth())
	}
	if split && cfg.Cycles > 1 {
		return measureLanes(ctx, c, cfg, lanes)
	}
	if cfg.CheckpointEvery > 0 || cfg.Resume != nil {
		return nil, fmt.Errorf("%w: circuit %q would run single-stream", ErrCheckpointUnsupported, n.Name)
	}
	return measureStream(ctx, c, cfg)
}

// measureStream measures one stimulus stream on the scalar kernel: the
// historical single-stream measurement, and the per-lane building block
// of the scalar fallback in measureLanes. cfg must have its defaults
// resolved. On a budget trip the partial counter is returned WITH the
// error: its statistics cover every cycle completed before the trip (a
// trip during warm-up yields a zero-cycle counter).
func measureStream(ctx context.Context, c *sim.Compiled, cfg Config) (*core.Counter, error) {
	n := c.Netlist()
	mode := sim.Transport
	if cfg.Inertial {
		mode = sim.Inertial
	}
	opts := sim.Options{Delay: cfg.Delay, Mode: mode, Budget: cfg.Budget.simBudget(time.Now())}
	if ctx.Done() != nil {
		opts.Cancel = ctx.Err
	}
	s := sim.NewFromCompiled(c, opts)
	// Warm-up runs unmonitored: the kernel then takes its no-monitor fast
	// path, and attaching the counter afterwards is indistinguishable
	// from attach-then-Reset (the counter carries no cross-cycle state
	// beyond the statistics a reset would clear).
	for i := 0; i < cfg.Warmup; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.Step(cfg.Source.Next()); err != nil {
			if errors.Is(err, sim.ErrBudgetExceeded) {
				return core.NewCounter(n), err
			}
			return nil, err
		}
	}
	counter := core.NewCounter(n)
	s.AttachMonitor(counter)
	for i := 0; i < cfg.Cycles; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.Step(cfg.Source.Next()); err != nil {
			if errors.Is(err, sim.ErrBudgetExceeded) {
				return counter, err
			}
			return nil, err
		}
	}
	return counter, nil
}

// Measure runs MeasureDetailed and summarizes the totals.
//
// Deprecated: use DefaultEngine().Measure (or your own Engine) to get
// compiled-netlist caching and context cancellation. This wrapper
// remains bit-identical to the equivalent Engine call; like every
// measurement it uses the process-default lane decomposition (see
// Config.Lanes — SetDefaultLanes(1) restores the pre-lanes
// single-stream numbers).
func Measure(n *netlist.Netlist, cfg Config) (Activity, error) {
	return DefaultEngine().Measure(context.Background(), MeasureRequest{Netlist: n, Config: cfg})
}

// ActivityFromCounter summarizes a counter's classified totals into an
// Activity named after circuit — the same reduction every measurement
// entry point applies. Useful for counters obtained from MeasureDetailed
// or the merged aggregate of MeasureSeeds.
func ActivityFromCounter(circuit string, counter *core.Counter) Activity {
	return summarize(circuit, counter)
}

func summarize(name string, counter *core.Counter) Activity {
	t := counter.Totals()
	return Activity{
		Circuit:     name,
		Cycles:      counter.Cycles(),
		Transitions: t.Transitions,
		Useful:      t.Useful,
		Useless:     t.Useless,
		Glitches:    t.Glitches,
		Rising:      t.Rising,
	}
}

// MeasurePower measures activity and evaluates the paper's
// three-component power model on it.
//
// Deprecated: use DefaultEngine().MeasurePower (or your own Engine) to
// get compiled-netlist caching and context cancellation. This wrapper
// remains bit-identical to the equivalent Engine call; like every
// measurement it uses the process-default lane decomposition (see
// Config.Lanes — SetDefaultLanes(1) restores the pre-lanes
// single-stream numbers).
func MeasurePower(n *netlist.Netlist, cfg Config, tech power.Tech) (power.Breakdown, Activity, error) {
	return DefaultEngine().MeasurePower(context.Background(), MeasureRequest{Netlist: n, Config: cfg, Tech: &tech})
}

// DefaultTech returns the calibrated 0.8 µm / 5 V / 5 MHz technology
// constants used by the Table 3 and Figure 10 experiments.
func DefaultTech() power.Tech { return power.Default08um() }

// Convenience circuit constructors re-exported for API users.

// NewRCA returns an N-bit ripple-carry adder built from full-adder cells.
func NewRCA(width int) *netlist.Netlist { return circuits.NewRCA(width, circuits.Cells) }

// NewArrayMultiplier returns an N×N array multiplier (Figure 6).
func NewArrayMultiplier(width int) *netlist.Netlist {
	return circuits.NewArrayMultiplier(width, circuits.Cells)
}

// NewWallaceMultiplier returns an N×N Wallace-tree multiplier (Figure 7).
func NewWallaceMultiplier(width int) *netlist.Netlist {
	return circuits.NewWallaceMultiplier(width, circuits.Cells)
}

// NewDirectionDetector returns the §4.2 video direction detector with
// the given sample width; registered=true adds the input flipflops of
// Table 3's circuit 1.
func NewDirectionDetector(width int, registered bool) *netlist.Netlist {
	return circuits.NewDirectionDetector(circuits.DirDetConfig{
		Width: width, Style: circuits.Cells, RegisterInputs: registered,
	})
}
