package glitchsim

// Resource-governance tests at the measurement layer: budget trips
// return partial counters whose statistics are bit-identical to
// truncated reference runs at the same cycle boundary (the acceptance
// bar for ErrBudgetExceeded), memory budgets reject at admission, and
// oscillation errors surface typed through the Engine.

import (
	"context"
	"errors"
	"testing"
	"time"

	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

// tripWide probes a descending ladder of event budgets until one trips
// measureWide strictly inside the measured region (after warm-up,
// before the final step), returning the partial counter and trip error.
// Event counts per step vary by circuit and delay model, so probing
// keeps the test calibration-free; each budget's outcome is itself
// deterministic.
func tripWide(t *testing.T, c *sim.Compiled, cfg Config, lanes, maxQ int) (*core.Counter, *BudgetError) {
	t.Helper()
	ctx := context.Background()
	for budget := uint64(1 << 24); budget >= 1<<6; budget >>= 1 {
		bcfg := cfg
		bcfg.Budget = Budget{Events: budget}
		counter, err := measureWide(ctx, c, bcfg, lanes)
		if err == nil {
			continue // budget too large: finished untripped
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("budget %d: unexpected error %v", budget, err)
		}
		if counter == nil {
			t.Fatalf("budget %d: trip returned nil partial counter", budget)
		}
		if k := be.Cycle - cfg.Warmup; k >= 1 && k < maxQ {
			return counter, be
		}
	}
	t.Fatal("no probed budget tripped inside the measured region")
	return nil, nil
}

// TestBudgetPartialWideEqualsMergedScalar is the acceptance test for
// partial statistics: a wide measurement tripped by an event budget
// after k completed measured steps must be bit-identical to the
// lane-order merge of scalar runs measuring min(quota_l, k) cycles
// each — on both word-parallel kernels.
func TestBudgetPartialWideEqualsMergedScalar(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		dm   delay.Model
	}{
		{"wide-lockstep-unit", delay.Unit()},
		{"wide-event-faratio", delay.FullAdderRatio(2, 1)},
	} {
		nl := circuits.NewArrayMultiplier(8, circuits.Cells)
		c := sim.Compile(nl)
		const lanes = 64
		cfg := Config{Cycles: 3200, Seed: 9, Delay: tc.dm}.withDefaults(nl)
		quotas := laneQuotas(cfg.Cycles, lanes)
		maxQ := quotas[0]

		partial, be := tripWide(t, c, cfg, lanes, maxQ)
		k := be.Cycle - cfg.Warmup
		t.Logf("%s: tripped after %d of %d measured steps (budget %d, used %d)",
			tc.name, k, maxQ, be.Limit, be.Used)

		// Scalar reference: each lane runs min(quota, k) measured cycles,
		// unbudgeted, merged in lane order.
		seeds := laneSeeds(cfg.Seed, lanes)
		var agg *core.Counter
		for l, seed := range seeds {
			lcfg := cfg
			lcfg.Seed = seed
			lcfg.Cycles = min(quotas[l], k)
			lcfg.Source = nil
			lcfg = lcfg.withDefaults(nl)
			counter, err := measureStream(ctx, c, lcfg)
			if err != nil {
				t.Fatalf("%s: scalar lane %d: %v", tc.name, l, err)
			}
			if agg == nil {
				agg = counter
			} else if err := agg.Merge(counter); err != nil {
				t.Fatal(err)
			}
		}

		if partial.Cycles() != agg.Cycles() {
			t.Fatalf("%s: cycles partial=%d scalar=%d", tc.name, partial.Cycles(), agg.Cycles())
		}
		for i := 0; i < nl.NumNets(); i++ {
			id := netlist.NetID(i)
			if got, want := partial.Stats(id), agg.Stats(id); got != want {
				t.Fatalf("%s: net %s partial stats differ\nwide:   %+v\nscalar: %+v",
					tc.name, nl.Nets[i].Name, got, want)
			}
		}
	}
}

// TestBudgetPartialScalarTruncates: on the scalar kernel a budget trip
// after k measured cycles is bit-identical to an unbudgeted run of
// exactly k cycles with the same seed.
func TestBudgetPartialScalarTruncates(t *testing.T) {
	ctx := context.Background()
	nl := circuits.NewArrayMultiplier(8, circuits.Cells)
	c := sim.Compile(nl)
	// Defaults are re-resolved per run: a stimulus Source is a stateful
	// iterator, so every probe needs its own.
	base := Config{Cycles: 500, Seed: 5}
	cfg := base.withDefaults(nl)

	var partial *core.Counter
	var be *BudgetError
	for budget := uint64(1 << 22); budget >= 1<<6; budget >>= 1 {
		bcfg := base
		bcfg.Budget = Budget{Events: budget}
		bcfg = bcfg.withDefaults(nl)
		counter, err := measureStream(ctx, c, bcfg)
		if err == nil {
			continue
		}
		if !errors.As(err, &be) {
			t.Fatalf("budget %d: unexpected error %v", budget, err)
		}
		if k := be.Cycle - cfg.Warmup; counter != nil && k >= 1 && k < cfg.Cycles {
			partial = counter
			break
		}
		be = nil
	}
	if partial == nil {
		t.Fatal("no probed budget tripped inside the measured region")
	}
	k := be.Cycle - cfg.Warmup
	if partial.Cycles() != k {
		t.Fatalf("partial counter has %d cycles, error boundary says %d", partial.Cycles(), k)
	}

	ref := base
	ref.Cycles = k
	ref = ref.withDefaults(nl)
	refCounter, err := measureStream(ctx, c, ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nl.NumNets(); i++ {
		id := netlist.NetID(i)
		if got, want := partial.Stats(id), refCounter.Stats(id); got != want {
			t.Fatalf("net %s partial stats differ\npartial: %+v\ntruncated ref: %+v",
				nl.Nets[i].Name, got, want)
		}
	}
}

// TestBudgetEngineSurfacesPartialActivity: the Engine entry points keep
// the typed error AND the partial result.
func TestBudgetEngineSurfacesPartialActivity(t *testing.T) {
	e := NewEngine()
	req := MeasureRequest{
		Circuit: CircuitFromNetlist(circuits.NewArrayMultiplier(8, circuits.Cells)),
		Config:  Config{Cycles: 3200, Budget: Budget{Events: 1 << 12}},
	}
	act, err := e.Measure(context.Background(), req)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expected budget trip, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not *BudgetError", err)
	}
	counter, err2 := e.MeasureDetailed(context.Background(), req)
	if !errors.Is(err2, ErrBudgetExceeded) || counter == nil {
		t.Fatalf("MeasureDetailed: counter=%v err=%v, want partial counter + budget error", counter, err2)
	}
	if act.Cycles != counter.Cycles() {
		t.Errorf("activity cycles %d != counter cycles %d", act.Cycles, counter.Cycles())
	}
}

// TestBudgetWallClock: an absurdly small wall-clock budget trips with
// the wall_clock resource and still yields a partial counter.
func TestBudgetWallClock(t *testing.T) {
	e := NewEngine()
	counter, err := e.MeasureDetailed(context.Background(), MeasureRequest{
		Circuit: CircuitFromNetlist(circuits.NewArrayMultiplier(16, circuits.Cells)),
		Config:  Config{Cycles: 100000, Budget: Budget{WallClock: time.Nanosecond}},
	})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *BudgetError, got %v", err)
	}
	if be.Resource != BudgetWallClock {
		t.Errorf("resource %q, want %q", be.Resource, BudgetWallClock)
	}
	if counter == nil {
		t.Error("wall-clock trip returned nil partial counter")
	}
}

// TestBudgetMemoryAdmission: a memory budget below the estimate rejects
// before compiling; one above it admits.
func TestBudgetMemoryAdmission(t *testing.T) {
	e := NewEngine(WithCacheSize(0))
	nl := circuits.NewArrayMultiplier(8, circuits.Cells)
	_, err := e.Measure(context.Background(), MeasureRequest{
		Circuit: CircuitFromNetlist(nl),
		Config:  Config{Cycles: 10, Budget: Budget{MemoryBytes: 1}},
	})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *BudgetError, got %v", err)
	}
	if be.Resource != BudgetMemory {
		t.Errorf("resource %q, want %q", be.Resource, BudgetMemory)
	}
	if be.Used == 0 {
		t.Error("admission error carries no estimate")
	}
	if _, err := e.Measure(context.Background(), MeasureRequest{
		Circuit: CircuitFromNetlist(nl),
		Config:  Config{Cycles: 10, Budget: Budget{MemoryBytes: 1 << 30}},
	}); err != nil {
		t.Fatalf("generous memory budget rejected: %v", err)
	}
}

// TestBudgetMemoryAdmissionBatch: measureMany applies admission per job
// without aborting the batch.
func TestBudgetMemoryAdmissionBatch(t *testing.T) {
	e := NewEngine()
	nl := circuits.NewRCA(8, circuits.Cells)
	res, err := e.MeasureMany(context.Background(), BatchRequest{Jobs: []MeasureJob{
		{Netlist: nl, Config: Config{Cycles: 10, Budget: Budget{MemoryBytes: 1}}},
		{Netlist: nl, Config: Config{Cycles: 10}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, ErrBudgetExceeded) {
		t.Errorf("job 0: %v, want budget error", res[0].Err)
	}
	if res[1].Err != nil || res[1].Counter == nil {
		t.Errorf("job 1 should have run: %+v", res[1])
	}
}

// TestEstimateCost: the admission estimate is populated, scales with
// circuit size, and counts steps by the lane decomposition.
func TestEstimateCost(t *testing.T) {
	e := NewEngine()
	small, err := e.EstimateCost(MeasureRequest{Circuit: CircuitNamed("rca8"), Config: Config{Cycles: 640}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := e.EstimateCost(MeasureRequest{Circuit: CircuitNamed("array16"), Config: Config{Cycles: 640}})
	if err != nil {
		t.Fatal(err)
	}
	if small.Cells <= 0 || small.Nets <= 0 || small.Pins <= 0 || small.Events == 0 || small.MemoryBytes == 0 {
		t.Fatalf("estimate has zero fields: %+v", small)
	}
	if big.MemoryBytes <= small.MemoryBytes || big.Events <= small.Events {
		t.Errorf("array16 estimate not larger than rca8: %+v vs %+v", big, small)
	}
	if small.Lanes != e.Lanes() {
		t.Errorf("lanes %d, want engine default %d", small.Lanes, e.Lanes())
	}
	wantSteps := 8 + (640+small.Lanes-1)/small.Lanes
	if small.Steps != wantSteps {
		t.Errorf("steps %d, want %d", small.Steps, wantSteps)
	}
	// Lanes=1 runs every cycle as its own step.
	scalar, err := e.EstimateCost(MeasureRequest{Circuit: CircuitNamed("rca8"), Config: Config{Cycles: 640, Lanes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Steps != 8+640 {
		t.Errorf("scalar steps %d, want %d", scalar.Steps, 8+640)
	}
}

// TestOscillationSurfacesThroughEngine: a delay model whose single hop
// exceeds the settle guard turns every cycle into a guard trip; the
// typed OscillationError must surface through Engine.Measure with hot
// nets attached.
func TestOscillationSurfacesThroughEngine(t *testing.T) {
	e := NewEngine()
	_, err := e.Measure(context.Background(), MeasureRequest{
		Circuit: CircuitFromNetlist(circuits.NewRCA(8, circuits.Cells)),
		Config:  Config{Cycles: 10, Delay: delay.Uniform(70000)}, // one hop > 1<<16 guard
	})
	if !errors.Is(err, ErrOscillation) {
		t.Fatalf("expected ErrOscillation, got %v", err)
	}
	var oe *OscillationError
	if !errors.As(err, &oe) {
		t.Fatalf("error %T is not *OscillationError", err)
	}
	if len(oe.Nets) == 0 || len(oe.Names) != len(oe.Nets) {
		t.Errorf("oscillation error names no hot nets: %+v", oe)
	}
}

// TestEngineLoad: the slot gauge reflects WithMaxConcurrency.
func TestEngineLoad(t *testing.T) {
	e := NewEngine(WithMaxConcurrency(3))
	if active, capacity := e.Load(); active != 0 || capacity != 3 {
		t.Fatalf("idle load = (%d, %d), want (0, 3)", active, capacity)
	}
}
