package glitchsim

import (
	"strings"
	"testing"
)

func TestBalanceStudy(t *testing.T) {
	rows, err := BalanceStudy(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 circuits, got %d", len(rows))
	}
	for _, r := range rows {
		if r.After.Useless != 0 {
			t.Errorf("%s: balanced circuit still has %d useless transitions", r.Circuit, r.After.Useless)
		}
		if r.Buffers == 0 {
			t.Errorf("%s: no buffers inserted", r.Circuit)
		}
		// The paper's claim, measured: original cells' activity falls by
		// 1 + L/F (within sampling noise between the two runs).
		if rel := r.CoreFactor/r.PredictedFactor - 1; rel < -0.05 || rel > 0.05 {
			t.Errorf("%s: core reduction %.2f deviates from predicted limit %.2f",
				r.Circuit, r.CoreFactor, r.PredictedFactor)
		}
		if r.CoreTransitions+r.BufferTransitions != r.After.Transitions {
			t.Errorf("%s: core+buffer transitions don't add up", r.Circuit)
		}
	}
}

func TestAdderStudy(t *testing.T) {
	rows, err := AdderStudy(16, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 architectures, got %d", len(rows))
	}
	get := func(arch string) AdderRow {
		for _, r := range rows {
			if r.Arch == arch {
				return r
			}
		}
		t.Fatalf("missing %s", arch)
		return AdderRow{}
	}
	rca, cla := get("ripple-carry"), get("carry-lookahead")
	if cla.Depth >= rca.Depth {
		t.Error("CLA must be shallower than RCA")
	}
	if cla.LOverF() >= rca.LOverF() {
		t.Errorf("CLA L/F %.2f not below RCA %.2f — balanced carry trees must glitch less",
			cla.LOverF(), rca.LOverF())
	}
	csel := get("carry-select")
	if csel.Depth >= rca.Depth {
		t.Error("carry-select must be shallower than RCA")
	}
}

func TestCorrelationStudy(t *testing.T) {
	rows, err := CorrelationStudy(3000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Stage != "video inputs" {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	in, diff := rows[0].LowBitAutocorr, rows[1].LowBitAutocorr
	if in < 0.1 {
		t.Fatalf("inputs not correlated: %v", in)
	}
	if diff > in/2 {
		t.Errorf("correlation after |a-b| = %.3f, not well below inputs %.3f", diff, in)
	}
}

func TestMultiplierStudy(t *testing.T) {
	rows, err := MultiplierStudy(8, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 architectures, got %d", len(rows))
	}
	byArch := map[string]AdderRow{}
	for _, r := range rows {
		byArch[r.Arch] = r
		if r.Useful == 0 || r.Useless == 0 {
			t.Errorf("%s: degenerate activity %+v", r.Arch, r.Activity)
		}
	}
	// The balanced wallace tree glitches the least; both the ripple
	// array and the booth multiplier (whose gate-level recode/select
	// trees skew the partial-product arrival times) sit well above it.
	if byArch["array"].LOverF() <= byArch["wallace"].LOverF() {
		t.Error("array must out-glitch wallace")
	}
	if byArch["booth"].LOverF() <= byArch["wallace"].LOverF() {
		t.Error("booth's recode logic must out-glitch the wallace tree")
	}
	if byArch["booth"].Cells <= byArch["wallace"].Cells {
		t.Error("booth should spend more cells (select logic) than wallace")
	}
}

func TestCompareEstimators(t *testing.T) {
	res, err := CompareEstimators(16, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Ordering: zero-delay ≈ useful < density < measured total... the
	// density estimate may over- or undershoot the truth globally, but
	// must exceed the glitch-blind estimate.
	if res.ZeroDelay >= res.Density {
		t.Errorf("density %v should exceed zero-delay %v", res.Density, res.ZeroDelay)
	}
	if res.ZeroDelay >= res.Measured {
		t.Errorf("zero-delay %v should undershoot measured %v", res.ZeroDelay, res.Measured)
	}
	if rel := res.ZeroDelay/res.MeasuredUseful - 1; rel < -0.05 || rel > 0.05 {
		t.Errorf("zero-delay %v should track useful %v", res.ZeroDelay, res.MeasuredUseful)
	}
}

func TestBalanceNetlistHelper(t *testing.T) {
	n := NewRCA(8)
	bal, buffers, err := BalanceNetlist(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if buffers == 0 {
		t.Error("expected buffers")
	}
	act, err := Measure(bal, Config{Cycles: 200})
	if err != nil {
		t.Fatal(err)
	}
	if act.Useless != 0 {
		t.Errorf("balanced RCA has %d useless transitions", act.Useless)
	}
}

func TestVerilogExportImport(t *testing.T) {
	n := NewRCA(4)
	var sb strings.Builder
	if err := ExportVerilog(&sb, n); err != nil {
		t.Fatal(err)
	}
	back, err := ImportVerilog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCells() != n.NumCells() {
		t.Errorf("cells %d -> %d", n.NumCells(), back.NumCells())
	}
	a1, err := Measure(n, Config{Cycles: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Measure(back, Config{Cycles: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Same structure, same stimulus => identical activity totals.
	if a1.Transitions != a2.Transitions || a1.Useless != a2.Useless {
		t.Errorf("activity changed through Verilog: %v vs %v", a1, a2)
	}
}

func TestNewAdderConstructors(t *testing.T) {
	if NewCLA(16).Name != "cla16g" {
		t.Error("cla name")
	}
	if NewCarrySelect(16, 4).Name != "csel16g" {
		t.Error("csel name")
	}
	if s := Summary(Activity{Circuit: "x", Useful: 2, Useless: 4}); !strings.Contains(s, "L/F=2.00") {
		t.Errorf("summary %q", s)
	}
}
