package glitchsim

import (
	"math"
	"strings"
	"testing"

	"glitchsim/internal/delay"
	"glitchsim/internal/stimulus"
)

func TestMeasureRCADeterministic(t *testing.T) {
	n := NewRCA(8)
	a, err := Measure(n, Config{Cycles: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(NewRCA(8), Config{Cycles: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different activity:\n%v\n%v", a, b)
	}
	if a.Transitions != a.Useful+a.Useless {
		t.Error("totals inconsistent")
	}
	if a.Cycles != 200 {
		t.Errorf("cycles = %d", a.Cycles)
	}
	if !strings.Contains(a.String(), "rca8") {
		t.Error("String misses circuit name")
	}
}

func TestMeasureSeedsDiffer(t *testing.T) {
	a, _ := Measure(NewRCA(8), Config{Cycles: 200, Seed: 1})
	b, _ := Measure(NewRCA(8), Config{Cycles: 200, Seed: 2})
	if a.Transitions == b.Transitions {
		t.Error("different seeds gave identical transition counts (suspicious)")
	}
}

func TestMeasureRejectsWrongSourceWidth(t *testing.T) {
	if _, err := Measure(NewRCA(8), Config{Source: stimulus.NewRandom(3, 1)}); err == nil {
		t.Fatal("expected width error")
	}
}

func TestMeasureMatchesAnalyticRCA(t *testing.T) {
	// The simulated per-cycle ratios of a 16-bit RCA must match the
	// closed forms within sampling noise (~1% at 20000 cycles).
	const cycles = 20000
	act, err := Measure(NewRCA(16), Config{Cycles: cycles, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Figure5(16, cycles, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	wantLF := 55668.0 / 63334.0 // paper's 0.88
	if got := act.LOverF(); math.Abs(got-wantLF) > 0.03 {
		t.Errorf("simulated L/F = %.3f, analytic %.3f", got, wantLF)
	}
	perCycle := float64(act.Transitions) / cycles
	if math.Abs(perCycle-29.75) > 0.3 {
		t.Errorf("transitions/cycle = %.2f, analytic 29.75", perCycle)
	}
}

func TestWorstCase(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		res, err := WorstCase(n)
		if err != nil {
			t.Fatal(err)
		}
		if res.TimelineSumTransitions != n || res.TimelineCarryTransitions != n {
			t.Errorf("N=%d: timeline transitions (%d,%d), want (%d,%d)",
				n, res.TimelineSumTransitions, res.TimelineCarryTransitions, n, n)
		}
		if res.SimSumTransitions != n || res.SimCarryTransitions != n {
			t.Errorf("N=%d: simulated transitions (%d,%d), want (%d,%d)",
				n, res.SimSumTransitions, res.SimCarryTransitions, n, n)
		}
		if res.Probability != 3*math.Pow(0.125, float64(n)) {
			t.Errorf("N=%d: probability %v", n, res.Probability)
		}
	}
	if _, err := WorstCase(1); err == nil {
		t.Error("expected error for N=1")
	}
}

func TestFigure5SimTracksAnalytic(t *testing.T) {
	const cycles = 4000
	res, err := Figure5(16, cycles, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Exact paper totals from the analytic side.
	if res.AnalyticTotal != 119002 || res.AnalyticUseful != 63334 || res.AnalyticUseless != 55668 {
		t.Errorf("analytic totals (%d,%d,%d), paper (119002,63334,55668)",
			res.AnalyticTotal, res.AnalyticUseful, res.AnalyticUseless)
	}
	// Simulation within 2% of analytic totals.
	if rel := math.Abs(float64(res.Sim.Transitions)-float64(res.AnalyticTotal)) / float64(res.AnalyticTotal); rel > 0.02 {
		t.Errorf("sim total %d deviates %.1f%% from analytic %d", res.Sim.Transitions, rel*100, res.AnalyticTotal)
	}
	// Per-bit: useful counts concentrate at cycles/2 per sum bit.
	if len(res.Bits) != 32 {
		t.Fatalf("expected 32 bit entries, got %d", len(res.Bits))
	}
	for _, b := range res.Bits {
		if b.Kind != "sum" {
			continue
		}
		if math.Abs(float64(b.SimUseful)-b.AnalyticUseful) > 0.05*float64(cycles) {
			t.Errorf("sum bit %d useful: sim %d vs analytic %.0f", b.Bit, b.SimUseful, b.AnalyticUseful)
		}
		if math.Abs(float64(b.SimUseless)-b.AnalyticUseless) > 0.05*float64(cycles)+10 {
			t.Errorf("sum bit %d useless: sim %d vs analytic %.0f", b.Bit, b.SimUseless, b.AnalyticUseless)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	get := func(arch string, width int) MultRow {
		for _, r := range rows {
			if r.Arch == arch && r.Width == width {
				return r
			}
		}
		t.Fatalf("missing row %s %d", arch, width)
		return MultRow{}
	}
	// Paper Table 1 shape: the wallace tree has far fewer useless
	// transitions and a far better L/F at both sizes; the imbalance of
	// the array multiplier worsens with width.
	for _, w := range []int{8, 16} {
		arr, wal := get("array", w), get("wallace", w)
		if arr.Useless <= 2*wal.Useless {
			t.Errorf("%dx%d: array useless %d not ≫ wallace %d", w, w, arr.Useless, wal.Useless)
		}
		if arr.LOverF() <= wal.LOverF() {
			t.Errorf("%dx%d: array L/F %.2f not above wallace %.2f", w, w, arr.LOverF(), wal.LOverF())
		}
	}
	if get("array", 16).LOverF() <= get("array", 8).LOverF() {
		t.Error("array L/F must grow with width (paper: 1.51 -> 3.26)")
	}
	// Paper magnitudes: 8x8 array L/F ~1.5, wallace ~0.3.
	if lf := get("array", 8).LOverF(); lf < 1.0 || lf > 2.5 {
		t.Errorf("8x8 array L/F = %.2f, paper reports 1.51", lf)
	}
	if lf := get("wallace", 8).LOverF(); lf < 0.1 || lf > 0.7 {
		t.Errorf("8x8 wallace L/F = %.2f, paper reports 0.28", lf)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	get := func(arch string, ds int) MultRow {
		for _, r := range rows {
			if r.Arch == arch && r.DSum == ds {
				return r
			}
		}
		t.Fatalf("missing row %s %d", arch, ds)
		return MultRow{}
	}
	for _, arch := range []string{"array", "wallace"} {
		eq, dbl := get(arch, 1), get(arch, 2)
		// Useful counts are delay-independent (paper: identical columns).
		if eq.Useful != dbl.Useful {
			t.Errorf("%s: useful changed with delay model: %d vs %d", arch, eq.Useful, dbl.Useful)
		}
		// Extra imbalance adds useless transitions (paper Table 2).
		if dbl.Useless <= eq.Useless {
			t.Errorf("%s: dsum=2dcarry useless %d not above dsum=dcarry %d", arch, dbl.Useless, eq.Useless)
		}
	}
}

func TestDirectionDetector42(t *testing.T) {
	res, err := DirectionDetector42(4320, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: L/F = 3.79, reduction limit 4.8. Our reconstruction has the
	// same character: several useless transitions per useful one.
	if lf := res.LOverF(); lf < 2.5 || lf > 6.5 {
		t.Errorf("direction detector L/F = %.2f, paper reports 3.79", lf)
	}
	if res.BalanceLimit != res.LOverF()+1 {
		t.Error("balance limit must be 1 + L/F")
	}
	if res.Useless < res.Useful {
		t.Error("useless must dominate in the unbalanced detector")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 circuits, got %d", len(rows))
	}
	// Circuit 1 is the input-registered original: 48 flipflops.
	if rows[0].FFs != 48 {
		t.Errorf("circuit 1 has %d FFs, want 48", rows[0].FFs)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].FFs <= rows[i-1].FFs {
			t.Errorf("FF count not increasing: %d then %d", rows[i-1].FFs, rows[i].FFs)
		}
		if rows[i].Period >= rows[i-1].Period {
			t.Errorf("period not decreasing: %d then %d", rows[i-1].Period, rows[i].Period)
		}
		if rows[i].FlipflopMW <= rows[i-1].FlipflopMW {
			t.Error("FF power must rise with FF count")
		}
		if rows[i].ClockMW <= rows[i-1].ClockMW {
			t.Error("clock power must rise with FF count")
		}
		if rows[i].ClockCapPF <= rows[i-1].ClockCapPF {
			t.Error("clock capacitance must rise with FF count")
		}
		if rows[i].AreaMM2 <= rows[i-1].AreaMM2 {
			t.Error("area must rise with FF count")
		}
		if rows[i].LOverF >= rows[i-1].LOverF {
			t.Error("L/F must fall as pipelining balances paths")
		}
	}
	// Logic power falls substantially from circuit 1 to circuit 4
	// (paper: 21.8 -> 6.1 mW, a factor ≈3.6).
	if f := rows[0].LogicMW / rows[3].LogicMW; f < 1.8 {
		t.Errorf("logic power reduction factor %.2f too small", f)
	}
	// Total power has an interior minimum (paper: circuit 3).
	minIdx := 0
	for i, r := range rows {
		if r.TotalMW < rows[minIdx].TotalMW {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(rows)-1 {
		t.Errorf("total power minimum at circuit %d, want interior", minIdx+1)
	}
}

func TestAblationInertial(t *testing.T) {
	res, err := AblationInertial(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.B.Useless >= res.A.Useless {
		t.Errorf("inertial useless %d not below transport %d", res.B.Useless, res.A.Useless)
	}
	if res.B.Useful == 0 || res.A.Useful == 0 {
		t.Error("useful activity vanished")
	}
}

func TestAblationGranularity(t *testing.T) {
	res, err := AblationGranularity(8, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Gate-level has more nets, hence more total transitions.
	if res.B.Transitions <= res.A.Transitions {
		t.Errorf("gate-level transitions %d not above cell-level %d", res.B.Transitions, res.A.Transitions)
	}
}

func TestAblationZeroDelay(t *testing.T) {
	res, err := AblationZeroDelay(16, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The glitch-blind estimate matches useful activity, so it must
	// underestimate total activity by about 1 + L/F ≈ 1.88.
	if res.Underestimate() < 1.5 {
		t.Errorf("zero-delay underestimate factor %.2f, want ≈1.9", res.Underestimate())
	}
	if math.Abs(res.EstimatedPerCycle-res.UsefulPerCycle)/res.UsefulPerCycle > 0.05 {
		t.Errorf("zero-delay estimate %.2f should track useful/cycle %.2f",
			res.EstimatedPerCycle, res.UsefulPerCycle)
	}
}

func TestSeedSweepStability(t *testing.T) {
	rows, err := SeedSweep(300, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("rows")
	}
	for _, r := range rows {
		if r.A.LOverF() <= r.B.LOverF() {
			t.Errorf("%s: array L/F %.2f not above wallace %.2f", r.Name, r.A.LOverF(), r.B.LOverF())
		}
	}
	// L/F spread across seeds stays tight.
	lo, hi := rows[0].A.LOverF(), rows[0].A.LOverF()
	for _, r := range rows {
		lf := r.A.LOverF()
		lo, hi = math.Min(lo, lf), math.Max(hi, lf)
	}
	if (hi-lo)/lo > 0.15 {
		t.Errorf("array L/F unstable across seeds: %.2f..%.2f", lo, hi)
	}
}

func TestGraySweep(t *testing.T) {
	rows, err := GraySweep(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("rows")
	}
	// Gray stimulus toggles one input bit per cycle: far less activity.
	if rows[1].Transitions >= rows[0].Transitions/2 {
		t.Errorf("gray activity %d not well below random %d", rows[1].Transitions, rows[0].Transitions)
	}
}

func TestFigure10Defaults(t *testing.T) {
	rows, err := Figure10(nil, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("expected a sweep, got %d points", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].FFs < rows[i-1].FFs {
			t.Errorf("sweep not ordered by FFs at %d", i)
		}
	}
	// Figure 10's message: an interior minimum of total power exists.
	minIdx := 0
	for i, r := range rows {
		if r.TotalMW < rows[minIdx].TotalMW {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(rows)-1 {
		t.Errorf("total power minimum at sweep point %d of %d, want interior", minIdx+1, len(rows))
	}
}

func TestMeasurePowerConsistency(t *testing.T) {
	nl := NewDirectionDetector(8, true)
	bd, act, err := MeasurePower(nl, Config{Cycles: 100}, DefaultTech())
	if err != nil {
		t.Fatal(err)
	}
	if bd.NumFFs != 48 || act.Cycles != 100 {
		t.Errorf("breakdown %v / activity %v inconsistent", bd, act)
	}
	if bd.LogicW <= 0 || bd.TotalW() <= bd.LogicW {
		t.Error("power components implausible")
	}
}

func TestInertialOptionReachesSimulator(t *testing.T) {
	// Same seed, inertial vs transport under heterogeneous delays must
	// differ (under pure unit delay the modes coincide by construction).
	nl := NewDirectionDetector(8, false)
	a, err := Measure(nl, Config{Cycles: 100, Delay: delay.Typical()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(nl, Config{Cycles: 100, Delay: delay.Typical(), Inertial: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Transitions == b.Transitions {
		t.Error("inertial flag appears to have no effect")
	}
	if b.Useless >= a.Useless {
		t.Errorf("inertial useless %d not below transport %d", b.Useless, a.Useless)
	}
}
