package glitchsim

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"glitchsim/netlist"
	"glitchsim/verilog"
)

// TestCircuitThreeWaysBitIdentical is the acceptance test of the
// first-class circuit API: the same circuit described as a built
// netlist, as Verilog source and as JSON must produce bit-identical
// Activity for one seed/config, with every description after the first
// hitting the engine's compiled-netlist cache (they share one
// fingerprint).
func TestCircuitThreeWaysBitIdentical(t *testing.T) {
	n := NewRCA(8)
	var v, j strings.Builder
	if err := verilog.Write(&v, n); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}

	e := NewEngine()
	ctx := context.Background()
	cfg := Config{Cycles: 120, Seed: 9}
	refs := map[string]Circuit{
		"builder": CircuitFromNetlist(n),
		"verilog": CircuitFromVerilog([]byte(v.String())),
		"json":    CircuitFromJSON([]byte(j.String())),
		"named":   CircuitNamed("rca8"),
	}
	var want Activity
	first := true
	for how, ref := range refs {
		got, err := e.MeasureCircuit(ctx, ref, cfg)
		if err != nil {
			t.Fatalf("%s: %v", how, err)
		}
		if first {
			want, first = got, false
			continue
		}
		if got != want {
			t.Errorf("%s: activity %+v differs from %+v", how, got, want)
		}
	}
	cs := e.CacheStats()
	if cs.Misses != 1 || cs.Hits != 3 {
		t.Errorf("cache stats %+v: the four descriptions must share one compiled netlist (1 miss, 3 hits)", cs)
	}
}

// TestCircuitSourceFormsMemoize: a reused source-form Circuit parses
// once; a second measurement reuses the same *netlist.Netlist.
func TestCircuitSourceFormsMemoize(t *testing.T) {
	var v strings.Builder
	if err := verilog.Write(&v, NewRCA(4)); err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	c := CircuitFromVerilog([]byte(v.String()))
	n1, err := e.Resolve(c)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := e.Resolve(c)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Error("source-form circuit re-parsed on second resolution")
	}
}

// TestResolveUnknownName: unknown names error with the resolvable list.
func TestResolveUnknownName(t *testing.T) {
	e := NewEngine()
	_, err := e.Resolve(CircuitNamed("nope"))
	if err == nil || !strings.Contains(err.Error(), "rca16") {
		t.Fatalf("want error listing available circuits, got %v", err)
	}
	if _, err := e.Resolve(Circuit{}); err == nil {
		t.Fatal("zero Circuit resolved")
	}
	if _, err := e.Measure(context.Background(), MeasureRequest{Config: Config{Cycles: 1}}); err == nil {
		t.Fatal("request without circuit measured")
	}
}

// fixedSource is a test CircuitSource serving one synthetic circuit.
type fixedSource struct{ n *netlist.Netlist }

func (s fixedSource) Resolve(name string) (*netlist.Netlist, bool, error) {
	if name == s.n.Name {
		return s.n, true, nil
	}
	return nil, false, nil
}
func (s fixedSource) Names() []string { return []string{s.n.Name} }

// TestWithCircuitSource: custom sources extend (and shadow) the name
// chain and show up in CircuitNames.
func TestWithCircuitSource(t *testing.T) {
	b := netlist.NewBuilder("custom1")
	a := b.Input("a")
	b.Output("z", b.Not(a))
	custom := b.MustBuild()

	// A second source shadowing a registry name proves chain order.
	b2 := netlist.NewBuilder("rca4")
	x := b2.Input("x")
	b2.Output("z", b2.Buf(x))
	shadow := b2.MustBuild()

	e := NewEngine(WithCircuitSource(fixedSource{custom}), WithCircuitSource(fixedSource{shadow}))
	got, err := e.Resolve(CircuitNamed("custom1"))
	if err != nil || got != custom {
		t.Fatalf("custom source not consulted: %v", err)
	}
	got, err = e.Resolve(CircuitNamed("rca4"))
	if err != nil || got != shadow {
		t.Fatalf("custom source does not shadow registry: %v", err)
	}
	names := e.CircuitNames()
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "custom1") || !strings.Contains(joined, "wallace16") {
		t.Errorf("CircuitNames %v misses custom or builtin names", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("CircuitNames unsorted at %d: %v", i, names)
		}
	}
}

// TestRequestNetlistFieldWins: the deprecated Netlist field keeps its
// pre-Circuit semantics, including when both fields are set.
func TestRequestNetlistFieldWins(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	nl := NewRCA(4)
	cfg := Config{Cycles: 40, Seed: 2}
	old, err := e.Measure(ctx, MeasureRequest{Netlist: nl, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	both, err := e.Measure(ctx, MeasureRequest{Netlist: nl, Circuit: CircuitNamed("rca16"), Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if both != old {
		t.Errorf("Netlist field did not win over Circuit: %+v vs %+v", both, old)
	}
}

// TestBatchWithCircuits: jobs may mix Circuit references and raw
// netlists; a job whose reference fails to resolve carries the error
// without aborting the batch.
func TestBatchWithCircuits(t *testing.T) {
	e := NewEngine()
	jobs := []MeasureJob{
		{Circuit: CircuitNamed("rca4"), Config: Config{Cycles: 20}},
		{Netlist: NewRCA(4), Config: Config{Cycles: 20}},
		{Circuit: CircuitNamed("nope"), Config: Config{Cycles: 20}},
	}
	res, err := e.MeasureMany(context.Background(), BatchRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("good jobs failed: %v / %v", res[0].Err, res[1].Err)
	}
	if res[0].Activity != res[1].Activity {
		t.Errorf("named and raw rca4 jobs disagree: %+v vs %+v", res[0].Activity, res[1].Activity)
	}
	if res[2].Err == nil || !strings.Contains(res[2].Err.Error(), "unknown circuit") {
		t.Errorf("bad job error = %v, want unknown circuit", res[2].Err)
	}
	if jobs[2].Netlist != nil {
		t.Error("measureMany mutated the caller's job slice")
	}
}

// TestSeedSweepWithCircuit: SeedSweepRequest accepts a Circuit and
// matches the netlist-based sweep bit for bit.
func TestSeedSweepWithCircuit(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	seeds := []uint64{1, 2, 3}
	cfg := Config{Cycles: 30}
	a, err := e.MeasureSeeds(ctx, SeedSweepRequest{Circuit: CircuitNamed("rca4"), Config: cfg, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.MeasureSeeds(ctx, SeedSweepRequest{Netlist: NewRCA(4), Config: cfg, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if a.Totals() != b.Totals() {
		t.Errorf("sweep totals differ: %+v vs %+v", a.Totals(), b.Totals())
	}
}

// TestExperimentCircuitOverride: Table3 retimes a caller-chosen subject;
// the fixed-set experiments reject the field.
func TestExperimentCircuitOverride(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	if _, err := e.Table1(ctx, ExperimentRequest{Circuit: CircuitNamed("rca4")}); err == nil {
		t.Error("Table1 accepted a Circuit override")
	}
	if _, err := e.AdderStudy(ctx, ExperimentRequest{Circuit: CircuitNamed("rca4")}); err == nil {
		t.Error("AdderStudy accepted a Circuit override")
	}
	if _, err := e.SeedSweep(ctx, ExperimentRequest{Circuit: CircuitNamed("rca4")}); err == nil {
		t.Error("SeedSweep accepted a Circuit override")
	}
	rows, err := e.Table3(ctx, ExperimentRequest{Cycles: 5, Circuit: CircuitNamed("dirdet8r")})
	if err != nil {
		t.Fatal(err)
	}
	def, err := e.Table3(ctx, ExperimentRequest{Cycles: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(def) {
		t.Fatalf("row counts differ: %d vs %d", len(rows), len(def))
	}
	for i := range rows {
		if rows[i] != def[i] {
			t.Errorf("row %d: explicit dirdet8r subject %+v differs from default %+v", i, rows[i], def[i])
		}
	}
}

// TestCircuitString: reference descriptions are stable and informative.
func TestCircuitString(t *testing.T) {
	if got := CircuitNamed("rca8").String(); got != `circuit "rca8"` {
		t.Errorf("named: %q", got)
	}
	if got := (Circuit{}).String(); got != "empty circuit" {
		t.Errorf("zero: %q", got)
	}
	if got := CircuitFromVerilog([]byte("abc")).String(); got != "verilog source (3 bytes)" {
		t.Errorf("verilog: %q", got)
	}
	if got := fmt.Sprint(CircuitFromNetlist(NewRCA(4))); got != `netlist "rca4"` {
		t.Errorf("netlist: %q", got)
	}
}
