package glitchsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"glitchsim/internal/core"
	"glitchsim/internal/netlist"
	"glitchsim/internal/sim"
)

// The parallel batch measurement layer: independent measurement configs
// (seeds × circuits × delay models) are sharded across a worker pool of
// per-goroutine simulators. Each distinct netlist is compiled once and
// the immutable compiled form is shared read-only by all workers, so a
// multi-seed study pays one compilation and N simulations. Results are
// deterministic: job i's outcome depends only on jobs[i], never on the
// worker count or scheduling order.

// defaultWorkers holds the worker count the experiment drivers use;
// 0 or negative means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the worker-pool size used by the experiment
// drivers (Table1, Table2, Table3, Figure10, SeedSweep, GraySweep, …)
// and by MeasureMany calls with workers <= 0. n <= 0 restores the
// default of GOMAXPROCS. The cmd/glitchsim -workers flag calls this.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the current default worker-pool size.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// MeasureJob is one independent measurement: a circuit and the
// configuration to measure it under. Jobs sharing a *netlist.Netlist
// share one compiled form. A job with an explicit Config.Source must not
// share that source with another job (sources are stateful); Seed-based
// jobs need no such care.
type MeasureJob struct {
	Netlist *netlist.Netlist
	Config  Config
}

// MeasureResult is the outcome of one MeasureJob.
type MeasureResult struct {
	// Activity summarizes the classified transition counts (valid when
	// Err is nil).
	Activity Activity
	// Counter holds the full per-net statistics (nil when Err is set).
	Counter *core.Counter
	// Err reports a failed measurement; other jobs are unaffected.
	Err error
}

// MeasureMany measures every job on a pool of `workers` goroutines
// (workers <= 0 means DefaultWorkers) and returns one result per job, in
// job order. Each distinct netlist is compiled once; per-goroutine
// simulators share the compiled form. Results are bit-identical to
// running Measure serially on each job.
func MeasureMany(jobs []MeasureJob, workers int) []MeasureResult {
	results := make([]MeasureResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Compile each distinct netlist once, up front and serially: Compile
	// panics on invalid netlists (as Measure does) and the panic should
	// surface on the caller's goroutine.
	compiled := make(map[*netlist.Netlist]*sim.Compiled, len(jobs))
	for i := range jobs {
		if nl := jobs[i].Netlist; nl != nil && compiled[nl] == nil {
			compiled[nl] = sim.Compile(nl)
		}
	}

	parallelEach(len(jobs), workers, func(i int) error {
		job := &jobs[i]
		if job.Netlist == nil {
			results[i].Err = fmt.Errorf("glitchsim: job %d has no netlist", i)
			return nil
		}
		counter, err := measureCompiled(compiled[job.Netlist], job.Config)
		if err != nil {
			results[i].Err = err
			return nil
		}
		results[i].Counter = counter
		results[i].Activity = summarize(job.Netlist.Name, counter)
		return nil // per-job errors live in results, never abort the batch
	})
	return results
}

// MeasureSeeds measures the same circuit under each stimulus seed in
// parallel and merges the per-seed counters into one aggregate, which
// reads like a single measurement of len(seeds)*cfg.Cycles cycles. Any
// Source in cfg is ignored (each seed gets its own stream). The merge
// order is fixed (seed order), so the aggregate is deterministic.
func MeasureSeeds(n *netlist.Netlist, cfg Config, seeds []uint64, workers int) (*core.Counter, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("glitchsim: MeasureSeeds needs at least one seed")
	}
	jobs := make([]MeasureJob, len(seeds))
	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		c.Source = nil
		jobs[i] = MeasureJob{Netlist: n, Config: c}
	}
	res := MeasureMany(jobs, workers)
	agg := res[0].Counter
	for i, r := range res {
		if r.Err != nil {
			return nil, fmt.Errorf("glitchsim: seed %d: %w", seeds[i], r.Err)
		}
		if i == 0 {
			continue
		}
		if err := agg.Merge(r.Counter); err != nil {
			return nil, err
		}
	}
	return agg, nil
}

// parallelEach runs f(0), …, f(n-1) on a pool of `workers` goroutines
// (workers <= 0 means DefaultWorkers) and returns the lowest-index
// error, so the reported failure does not depend on scheduling order.
// It is the harness behind experiment drivers whose per-item work is
// more than a plain measurement (e.g. retime-then-measure sweeps).
func parallelEach(n, workers int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
