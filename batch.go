package glitchsim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"glitchsim/internal/core"
	"glitchsim/netlist"
)

// The parallel batch measurement layer: independent measurement configs
// (seeds × circuits × delay models) are sharded across a worker pool of
// per-goroutine simulators. Each distinct netlist is compiled once and
// the immutable compiled form is shared read-only by all workers, so a
// multi-seed study pays one compilation and N simulations. Results are
// deterministic: job i's outcome depends only on jobs[i], never on the
// worker count or scheduling order. The pool is context-aware: workers
// stop picking up new items as soon as the request's context is
// cancelled, and in-flight simulations abort from inside the kernel.

// defaultWorkers holds the worker count the experiment drivers use;
// 0 or negative means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the worker-pool size used by the experiment
// drivers (Table1, Table2, Table3, Figure10, SeedSweep, GraySweep, …)
// and by Engines without an explicit WithWorkers option. n <= 0 restores
// the default of GOMAXPROCS. The cmd/glitchsim -workers flag calls this.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the current default worker-pool size.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// MeasureJob is one independent measurement: a circuit and the
// configuration to measure it under. Jobs sharing a *netlist.Netlist
// (or a Circuit resolving to the same structure) share one compiled
// form. A job with an explicit Config.Source must not share that source
// with another job (sources are stateful); Seed-based jobs need no such
// care.
type MeasureJob struct {
	// Circuit references the circuit to measure (see CircuitNamed and
	// friends). Resolution failures land in the job's MeasureResult.
	Circuit Circuit
	// Netlist is the circuit as a raw netlist.
	//
	// Deprecated: set Circuit. When both are set, Netlist wins.
	Netlist *netlist.Netlist
	Config  Config
}

// MeasureResult is the outcome of one MeasureJob.
type MeasureResult struct {
	// Activity summarizes the classified transition counts (valid when
	// Err is nil).
	Activity Activity
	// Counter holds the full per-net statistics (nil when Err is set).
	Counter *core.Counter
	// Err reports a failed measurement; other jobs are unaffected.
	Err error
}

// MeasureMany measures every job on a pool of `workers` goroutines
// (workers <= 0 means DefaultWorkers) and returns one result per job, in
// job order. Each distinct netlist is compiled once; per-goroutine
// simulators share the compiled form. Results are bit-identical to
// running Measure serially on each job.
//
// Deprecated: use DefaultEngine().MeasureMany (or your own Engine) to
// get compiled-netlist caching and context cancellation. This wrapper
// remains bit-identical to the equivalent Engine call; like every
// measurement it uses the process-default lane decomposition (see
// Config.Lanes — SetDefaultLanes(1) restores the pre-lanes
// single-stream numbers).
func MeasureMany(jobs []MeasureJob, workers int) []MeasureResult {
	results, _ := DefaultEngine().MeasureMany(context.Background(), BatchRequest{Jobs: jobs, Workers: workers})
	return results
}

// MeasureSeeds measures the same circuit under each stimulus seed in
// parallel and merges the per-seed counters into one aggregate, which
// reads like a single measurement of len(seeds)*cfg.Cycles cycles. Any
// Source in cfg is ignored (each seed gets its own stream). The merge
// order is fixed (seed order), so the aggregate is deterministic.
//
// Deprecated: use DefaultEngine().MeasureSeeds (or your own Engine) to
// get compiled-netlist caching and context cancellation. This wrapper
// remains bit-identical to the equivalent Engine call; like every
// measurement it uses the process-default lane decomposition (see
// Config.Lanes — SetDefaultLanes(1) restores the pre-lanes
// single-stream numbers).
func MeasureSeeds(n *netlist.Netlist, cfg Config, seeds []uint64, workers int) (*core.Counter, error) {
	return DefaultEngine().MeasureSeeds(context.Background(), SeedSweepRequest{
		Netlist: n, Config: cfg, Seeds: seeds, Workers: workers,
	})
}

// parallelEachCtx runs f(0), …, f(n-1) on a pool of `workers` goroutines
// (workers <= 0 means DefaultWorkers). Workers stop claiming new indices
// once ctx is cancelled; the function then returns ctx's error. With a
// live context it returns the lowest-index error from f, so the reported
// failure does not depend on scheduling order. It is the harness behind
// every Engine fan-out (batches, seed sweeps, retime-then-measure
// experiment drivers).
func parallelEachCtx(ctx context.Context, n, workers int, f func(i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
