package glitchsim_test

import (
	"testing"

	"glitchsim"
	"glitchsim/internal/core"
	"glitchsim/internal/stimulus"
)

// TestMeasureManyMatchesSerial: parallel batch measurement must be
// bit-identical to measuring each job serially, for any worker count.
func TestMeasureManyMatchesSerial(t *testing.T) {
	rca := glitchsim.NewRCA(8)
	wal := glitchsim.NewWallaceMultiplier(4)
	jobs := []glitchsim.MeasureJob{
		{Netlist: rca, Config: glitchsim.Config{Cycles: 60, Seed: 1}},
		{Netlist: rca, Config: glitchsim.Config{Cycles: 60, Seed: 2}},
		{Netlist: rca, Config: glitchsim.Config{Cycles: 40, Seed: 3, Inertial: true}},
		{Netlist: wal, Config: glitchsim.Config{Cycles: 50, Seed: 1}},
		{Netlist: wal, Config: glitchsim.Config{Cycles: 50, Seed: 4}},
	}
	want := make([]glitchsim.Activity, len(jobs))
	for i, j := range jobs {
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		act, err := glitchsim.Measure(j.Netlist, j.Config)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = act
	}
	for _, workers := range []int{1, 2, 5, 16} {
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		res := glitchsim.MeasureMany(jobs, workers)
		if len(res) != len(jobs) {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(res), len(jobs))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Activity != want[i] {
				t.Errorf("workers=%d job %d: activity %+v, serial %+v", workers, i, r.Activity, want[i])
			}
			if r.Counter == nil {
				t.Fatalf("workers=%d job %d: nil counter", workers, i)
			}
		}
	}
}

// TestMeasureManyReportsPerJobErrors: a failing job (stimulus width
// mismatch) must not disturb its neighbours.
func TestMeasureManyReportsPerJobErrors(t *testing.T) {
	rca := glitchsim.NewRCA(4)
	other := glitchsim.NewRCA(6)
	bad := glitchsim.Config{Cycles: 10, Source: stimulus.NewRandom(3, 1)} // wrong width
	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	res := glitchsim.MeasureMany([]glitchsim.MeasureJob{
		{Netlist: rca, Config: glitchsim.Config{Cycles: 10}},
		{Netlist: rca, Config: bad},
		{Netlist: nil},
		{Netlist: other, Config: glitchsim.Config{Cycles: 10}},
	}, 2)
	if res[0].Err != nil || res[3].Err != nil {
		t.Fatalf("good jobs failed: %v / %v", res[0].Err, res[3].Err)
	}
	if res[1].Err == nil {
		t.Error("width-mismatched job did not fail")
	}
	if res[2].Err == nil {
		t.Error("nil-netlist job did not fail")
	}
}

// TestMeasureSeedsMergesCounters: the seed-merged aggregate must equal
// the sum of the individual per-seed measurements.
func TestMeasureSeedsMergesCounters(t *testing.T) {
	nl := glitchsim.NewArrayMultiplier(4)
	seeds := []uint64{1, 2, 3, 4}
	cfg := glitchsim.Config{Cycles: 50}

	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	agg, err := glitchsim.MeasureSeeds(nl, cfg, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wantTotal core.NetStats
	wantCycles := 0
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		counter, err := glitchsim.MeasureDetailed(nl, c)
		if err != nil {
			t.Fatal(err)
		}
		tot := counter.Totals()
		wantTotal.Transitions += tot.Transitions
		wantTotal.Useful += tot.Useful
		wantTotal.Useless += tot.Useless
		wantTotal.Glitches += tot.Glitches
		wantTotal.Rising += tot.Rising
		wantCycles += counter.Cycles()
	}
	got := agg.Totals()
	if got.Transitions != wantTotal.Transitions || got.Useful != wantTotal.Useful ||
		got.Useless != wantTotal.Useless || got.Glitches != wantTotal.Glitches ||
		got.Rising != wantTotal.Rising {
		t.Errorf("merged totals %+v, want %+v", got, wantTotal)
	}
	if agg.Cycles() != wantCycles {
		t.Errorf("merged cycles %d, want %d", agg.Cycles(), wantCycles)
	}

	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	if _, err := glitchsim.MeasureSeeds(nl, cfg, nil, 1); err == nil {
		t.Error("MeasureSeeds with no seeds did not fail")
	}
}

// TestCounterMergeRejectsMismatch: merging counters over different
// netlist sizes must fail rather than corrupt statistics.
func TestCounterMergeRejectsMismatch(t *testing.T) {
	a := core.NewCounter(glitchsim.NewRCA(4))
	b := core.NewCounter(glitchsim.NewRCA(8))
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across differently sized netlists succeeded")
	}
}
