package netlist

// cellHeap is a min-heap of CellIDs used to make TopoOrder deterministic
// (smallest ready cell first) without repeated sorting.
type cellHeap []CellID

func (h *cellHeap) push(x CellID) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *cellHeap) pop() CellID {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h)[l] < (*h)[small] {
			small = l
		}
		if r < last && (*h)[r] < (*h)[small] {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// TopoOrder returns every cell in a topological order of the
// combinational subgraph: a cell appears after all combinational cells
// whose outputs it reads. DFF cells appear first (their outputs act as
// sources, like primary inputs). The order is deterministic.
func (n *Netlist) TopoOrder() []CellID {
	order := make([]CellID, 0, len(n.Cells))
	// indeg counts combinational fanin cells not yet emitted.
	indeg := make([]int, len(n.Cells))
	for i := range n.Cells {
		c := &n.Cells[i]
		if c.Type == DFF {
			continue
		}
		for _, in := range c.In {
			d := n.Nets[in].Driver
			if d != NoCell && n.Cells[d].Type != DFF {
				indeg[i]++
			}
		}
	}
	var ready cellHeap
	for i := range n.Cells {
		if n.Cells[i].Type == DFF {
			order = append(order, CellID(i))
		} else if indeg[i] == 0 {
			ready.push(CellID(i))
		}
	}
	for len(ready) > 0 {
		cid := ready.pop()
		order = append(order, cid)
		for _, o := range n.Cells[cid].Out {
			if o == NoNet {
				continue
			}
			for _, s := range n.Nets[o].Sinks {
				if n.Cells[s.Cell].Type == DFF {
					continue
				}
				indeg[s.Cell]--
				if indeg[s.Cell] == 0 {
					ready.push(s.Cell)
				}
			}
		}
	}
	return order
}

// DelayFunc maps a cell output pin to its propagation delay in integer
// time units. It is the minimal interface topo-based timing needs; the
// delay package provides implementations.
type DelayFunc func(c *Cell, outPin int) int

// ArrivalTimes returns, for every net, the worst-case settling time of
// the net within a clock cycle under the given delay function: primary
// inputs and DFF outputs arrive at t=0, every combinational cell adds its
// per-output delay. The result is indexed by NetID.
func (n *Netlist) ArrivalTimes(delay DelayFunc) []int {
	at := make([]int, len(n.Nets))
	for _, cid := range n.TopoOrder() {
		c := &n.Cells[cid]
		if c.Type == DFF {
			continue // Q arrives at 0
		}
		worst := 0
		for _, in := range c.In {
			if at[in] > worst {
				worst = at[in]
			}
		}
		for pin, o := range c.Out {
			if o != NoNet {
				at[o] = worst + delay(c, pin)
			}
		}
	}
	return at
}

// CriticalPathLength returns the maximum arrival time over all nets: the
// minimum clock period of the circuit under the delay model.
func (n *Netlist) CriticalPathLength(delay DelayFunc) int {
	worst := 0
	for _, t := range n.ArrivalTimes(delay) {
		if t > worst {
			worst = t
		}
	}
	return worst
}

// LogicDepth returns the maximum number of combinational cells on any
// PI/DFF-to-net path (unit delay critical path).
func (n *Netlist) LogicDepth() int {
	return n.CriticalPathLength(func(*Cell, int) int { return 1 })
}
