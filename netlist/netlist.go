// Package netlist defines the gate-level circuit data model used by the
// glitchsim simulator, the activity analyzer, the retimer and the power
// model: a flat netlist of multi-output cells connected by single-driver
// nets.
//
// The model matches the paper's level of abstraction: combinational cells
// (simple gates plus compound half/full adder cells with independently
// configurable sum and carry delays) and edge-triggered D flipflops that
// update only on the clock edge.
//
// External circuits are constructed with a Builder:
//
//	b := netlist.NewBuilder("hazard")
//	a := b.Input("a")
//	b.Output("out", b.And(a, b.Not(a)))
//	n, err := b.Build()
//
// Build validates the whole netlist (single drivers, pin counts, no
// combinational cycles) and the result plugs directly into the root
// glitchsim package (glitchsim.CircuitFromNetlist) or the simulator.
// Netlists also round-trip through a JSON wire format (WriteJSON /
// ReadJSON) and through structural Verilog (package glitchsim/verilog);
// both preserve Fingerprint, the structural identity the Engine's
// compiled-netlist cache is keyed by.
package netlist

import "fmt"

// NetID identifies a net within one Netlist.
type NetID int32

// CellID identifies a cell within one Netlist.
type CellID int32

// NoCell marks the absence of a driving cell (primary inputs).
const NoCell CellID = -1

// NoNet marks an invalid or absent net.
const NoNet NetID = -1

// CellType enumerates the supported cell kinds.
type CellType uint8

// Supported cell types. And/Nand/Or/Nor/Xor/Xnor accept two or more
// inputs; the rest have the fixed pin counts documented below.
const (
	Const0 CellType = iota // 0 inputs, 1 output: constant 0
	Const1                 // 0 inputs, 1 output: constant 1
	Buf                    // 1 input, 1 output
	Not                    // 1 input, 1 output
	And                    // ≥2 inputs, 1 output
	Nand                   // ≥2 inputs, 1 output
	Or                     // ≥2 inputs, 1 output
	Nor                    // ≥2 inputs, 1 output
	Xor                    // ≥2 inputs, 1 output (parity)
	Xnor                   // ≥2 inputs, 1 output (inverted parity)
	Mux2                   // 3 inputs [a, b, sel], 1 output: sel ? b : a
	Maj3                   // 3 inputs, 1 output: majority
	HA                     // 2 inputs [a, b], 2 outputs [sum, carry]
	FA                     // 3 inputs [a, b, cin], 2 outputs [sum, cout]
	DFF                    // 1 input [d], 1 output [q]; clocked
	numCellTypes
)

var cellTypeNames = [numCellTypes]string{
	Const0: "const0", Const1: "const1", Buf: "buf", Not: "not",
	And: "and", Nand: "nand", Or: "or", Nor: "nor", Xor: "xor",
	Xnor: "xnor", Mux2: "mux2", Maj3: "maj3", HA: "ha", FA: "fa",
	DFF: "dff",
}

// String returns the lowercase cell-type name.
func (t CellType) String() string {
	if int(t) < len(cellTypeNames) {
		return cellTypeNames[t]
	}
	return fmt.Sprintf("celltype(%d)", uint8(t))
}

// pinSpec describes legal pin counts for a type. inMax == -1 means
// unbounded.
type pinSpec struct {
	inMin, inMax int
	outs         int
}

var pinSpecs = [numCellTypes]pinSpec{
	Const0: {0, 0, 1},
	Const1: {0, 0, 1},
	Buf:    {1, 1, 1},
	Not:    {1, 1, 1},
	And:    {2, -1, 1},
	Nand:   {2, -1, 1},
	Or:     {2, -1, 1},
	Nor:    {2, -1, 1},
	Xor:    {2, -1, 1},
	Xnor:   {2, -1, 1},
	Mux2:   {3, 3, 1},
	Maj3:   {3, 3, 1},
	HA:     {2, 2, 2},
	FA:     {3, 3, 2},
	DFF:    {1, 1, 1},
}

// Outputs returns the number of output pins cells of type t have.
func (t CellType) Outputs() int { return pinSpecs[t].outs }

// InputRange returns the legal input pin count range; max == -1 means
// unbounded.
func (t CellType) InputRange() (min, max int) {
	s := pinSpecs[t]
	return s.inMin, s.inMax
}

// Sequential reports whether cells of this type hold state across clock
// cycles.
func (t CellType) Sequential() bool { return t == DFF }

// Named output pins of compound adder cells.
const (
	PinSum   = 0 // HA/FA output pin carrying the sum
	PinCarry = 1 // HA/FA output pin carrying the carry
)

// Cell is one instance in the netlist.
type Cell struct {
	ID   CellID
	Type CellType
	Name string
	In   []NetID // input nets, in pin order
	Out  []NetID // output nets, in pin order; NoNet for unused pins
}

// Pin identifies one input port of a cell.
type Pin struct {
	Cell CellID
	Port int
}

// Net is a single-driver wire.
type Net struct {
	ID        NetID
	Name      string
	Driver    CellID // NoCell when the net is a primary input
	DriverPin int    // output pin index on the driver
	Sinks     []Pin  // input pins reading this net
}

// IsPrimaryInput reports whether the net has no driving cell.
func (n *Net) IsPrimaryInput() bool { return n.Driver == NoCell }

// Netlist is a flat gate-level circuit.
type Netlist struct {
	Name  string
	Cells []Cell
	Nets  []Net
	// PIs lists primary-input nets in declaration order; the simulator
	// applies stimulus vectors in this order.
	PIs []NetID
	// POs lists primary-output nets in declaration order.
	POs []NetID
	// Buses maps a bus name to its member nets, LSB first. Buses group
	// PIs/POs and named internal vectors for reporting.
	Buses map[string][]NetID

	netByName map[string]NetID
}

// NumCells returns the number of cells.
func (n *Netlist) NumCells() int { return len(n.Cells) }

// NumNets returns the number of nets.
func (n *Netlist) NumNets() int { return len(n.Nets) }

// Cell returns the cell with the given id.
func (n *Netlist) Cell(id CellID) *Cell { return &n.Cells[id] }

// Net returns the net with the given id.
func (n *Netlist) Net(id NetID) *Net { return &n.Nets[id] }

// NetByName returns the net with the given name, or NoNet.
func (n *Netlist) NetByName(name string) NetID {
	if id, ok := n.netByName[name]; ok {
		return id
	}
	return NoNet
}

// Bus returns the nets of a named bus (LSB first), or nil.
func (n *Netlist) Bus(name string) []NetID { return n.Buses[name] }

// InputWidth returns the total number of primary-input bits.
func (n *Netlist) InputWidth() int { return len(n.PIs) }

// OutputWidth returns the total number of primary-output bits.
func (n *Netlist) OutputWidth() int { return len(n.POs) }

// NumDFFs returns the number of flipflop cells, the quantity the paper's
// flipflop and clock power components are proportional to.
func (n *Netlist) NumDFFs() int {
	c := 0
	for i := range n.Cells {
		if n.Cells[i].Type == DFF {
			c++
		}
	}
	return c
}

// NumCombinationalCells returns the number of non-DFF cells.
func (n *Netlist) NumCombinationalCells() int {
	return len(n.Cells) - n.NumDFFs()
}

// CellCounts returns the number of cells of each type.
func (n *Netlist) CellCounts() map[CellType]int {
	m := make(map[CellType]int)
	for i := range n.Cells {
		m[n.Cells[i].Type]++
	}
	return m
}

// InternalNets returns the IDs of all nets that are not primary inputs:
// the "internal signal nodes" the paper monitors during simulation.
func (n *Netlist) InternalNets() []NetID {
	out := make([]NetID, 0, len(n.Nets))
	for i := range n.Nets {
		if !n.Nets[i].IsPrimaryInput() {
			out = append(out, n.Nets[i].ID)
		}
	}
	return out
}
