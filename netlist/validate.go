package netlist

import (
	"errors"
	"fmt"
)

// Validate checks structural and semantic well-formedness:
//   - every non-PI net has exactly the driver recorded on it,
//   - cell pin counts are legal for their types,
//   - all net/cell cross-references are consistent,
//   - the combinational subgraph (DFF outputs cut) is acyclic.
//
// It returns a joined error describing every problem found.
func (n *Netlist) Validate() error {
	var errs []error

	for i := range n.Cells {
		c := &n.Cells[i]
		if c.ID != CellID(i) {
			errs = append(errs, fmt.Errorf("cell %d: stored ID %d mismatch", i, c.ID))
		}
		min, max := c.Type.InputRange()
		if len(c.In) < min || (max >= 0 && len(c.In) > max) {
			errs = append(errs, fmt.Errorf("cell %q (%s): %d inputs, want %d..%d", c.Name, c.Type, len(c.In), min, max))
		}
		if len(c.Out) != c.Type.Outputs() {
			errs = append(errs, fmt.Errorf("cell %q (%s): %d outputs, want %d", c.Name, c.Type, len(c.Out), c.Type.Outputs()))
		}
		for pin, o := range c.Out {
			if o == NoNet {
				continue
			}
			if int(o) >= len(n.Nets) || o < 0 {
				errs = append(errs, fmt.Errorf("cell %q: output %d references invalid net %d", c.Name, pin, o))
				continue
			}
			net := &n.Nets[o]
			if net.Driver != c.ID || net.DriverPin != pin {
				errs = append(errs, fmt.Errorf("cell %q: output pin %d drives net %q whose driver record is cell %d pin %d",
					c.Name, pin, net.Name, net.Driver, net.DriverPin))
			}
		}
		for port, in := range c.In {
			if int(in) >= len(n.Nets) || in < 0 {
				errs = append(errs, fmt.Errorf("cell %q: input %d references invalid net %d", c.Name, port, in))
			}
		}
	}

	pi := make(map[NetID]bool, len(n.PIs))
	for _, id := range n.PIs {
		if pi[id] {
			errs = append(errs, fmt.Errorf("net %q listed as primary input twice", n.Nets[id].Name))
		}
		pi[id] = true
	}
	for i := range n.Nets {
		net := &n.Nets[i]
		if net.ID != NetID(i) {
			errs = append(errs, fmt.Errorf("net %d: stored ID %d mismatch", i, net.ID))
		}
		if net.Driver == NoCell && !pi[net.ID] {
			errs = append(errs, fmt.Errorf("net %q has no driver and is not a primary input", net.Name))
		}
		if net.Driver != NoCell && pi[net.ID] {
			errs = append(errs, fmt.Errorf("primary input %q is driven by cell %d", net.Name, net.Driver))
		}
		for _, s := range net.Sinks {
			if int(s.Cell) >= len(n.Cells) || s.Cell < 0 {
				errs = append(errs, fmt.Errorf("net %q: sink references invalid cell %d", net.Name, s.Cell))
				continue
			}
			c := &n.Cells[s.Cell]
			if s.Port >= len(c.In) || c.In[s.Port] != net.ID {
				errs = append(errs, fmt.Errorf("net %q: sink (cell %q, port %d) does not read it back", net.Name, c.Name, s.Port))
			}
		}
	}
	for _, id := range n.POs {
		if id < 0 || int(id) >= len(n.Nets) {
			errs = append(errs, fmt.Errorf("primary output references invalid net %d", id))
		}
	}

	if cyc := n.findCombinationalCycle(); cyc != nil {
		names := make([]string, len(cyc))
		for i, cid := range cyc {
			names[i] = n.Cells[cid].Name
		}
		errs = append(errs, fmt.Errorf("combinational cycle through cells %v", names))
	}

	return errors.Join(errs...)
}

// findCombinationalCycle returns a cycle of combinational cells (each
// driving the next through a net), or nil if the combinational subgraph
// is acyclic. DFFs cut the graph: paths through a DFF are sequential and
// legal.
func (n *Netlist) findCombinationalCycle() []CellID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(n.Cells))
	parent := make([]CellID, len(n.Cells))
	for i := range parent {
		parent[i] = NoCell
	}

	// Iterative DFS over combinational cells.
	var stack []CellID
	for start := range n.Cells {
		if color[start] != white || n.Cells[start].Type == DFF {
			continue
		}
		stack = append(stack[:0], CellID(start))
		for len(stack) > 0 {
			cid := stack[len(stack)-1]
			if color[cid] == white {
				color[cid] = gray
			} else {
				color[cid] = black
				stack = stack[:len(stack)-1]
				continue
			}
			for _, o := range n.Cells[cid].Out {
				if o == NoNet {
					continue
				}
				for _, s := range n.Nets[o].Sinks {
					next := s.Cell
					if n.Cells[next].Type == DFF {
						continue
					}
					switch color[next] {
					case white:
						parent[next] = cid
						stack = append(stack, next)
					case gray:
						// Reconstruct the cycle next -> ... -> cid -> next.
						cyc := []CellID{next}
						for v := cid; v != next && v != NoCell; v = parent[v] {
							cyc = append(cyc, v)
						}
						return cyc
					}
				}
			}
		}
	}
	return nil
}
