package netlist

import "fmt"

// Builder incrementally constructs a Netlist. All helper methods panic on
// structural misuse (wrong pin counts, duplicate names, foreign nets);
// the final Build call performs whole-netlist validation and returns any
// semantic errors (undriven nets, combinational cycles).
type Builder struct {
	n        *Netlist
	autoNets int
	finished bool
}

// NewBuilder returns a Builder for a netlist with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		n: &Netlist{
			Name:      name,
			Buses:     map[string][]NetID{},
			netByName: map[string]NetID{},
		},
	}
}

func (b *Builder) checkOpen() {
	if b.finished {
		panic("netlist: builder used after Build")
	}
}

func (b *Builder) newNet(name string) NetID {
	b.checkOpen()
	if name == "" {
		name = fmt.Sprintf("n%d", b.autoNets)
		b.autoNets++
	}
	if _, dup := b.n.netByName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate net name %q", name))
	}
	id := NetID(len(b.n.Nets))
	b.n.Nets = append(b.n.Nets, Net{ID: id, Name: name, Driver: NoCell})
	b.n.netByName[name] = id
	return id
}

func (b *Builder) checkNet(id NetID) {
	if id < 0 || int(id) >= len(b.n.Nets) {
		panic(fmt.Sprintf("netlist: invalid net id %d", id))
	}
}

// Input declares a 1-bit primary input and returns its net.
func (b *Builder) Input(name string) NetID {
	id := b.newNet(name)
	b.n.PIs = append(b.n.PIs, id)
	return id
}

// InputBus declares an n-bit primary input bus (LSB first). Bit nets are
// named name[i].
func (b *Builder) InputBus(name string, n int) []NetID {
	ids := make([]NetID, n)
	for i := range ids {
		ids[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	b.n.Buses[name] = append([]NetID(nil), ids...)
	return ids
}

// Output marks an existing net as a primary output under the given name.
// The net keeps its original name; the output name is registered as an
// alias bus of width 1 when it differs.
func (b *Builder) Output(name string, id NetID) {
	b.checkOpen()
	b.checkNet(id)
	b.n.POs = append(b.n.POs, id)
	if name != "" {
		b.n.Buses[name] = append(b.n.Buses[name], id)
	}
}

// OutputBus marks the nets of ids (LSB first) as primary outputs grouped
// under a bus name.
func (b *Builder) OutputBus(name string, ids []NetID) {
	b.checkOpen()
	for _, id := range ids {
		b.checkNet(id)
		b.n.POs = append(b.n.POs, id)
	}
	b.n.Buses[name] = append([]NetID(nil), ids...)
}

// NameBus registers an internal bus name for reporting without marking
// the nets as outputs.
func (b *Builder) NameBus(name string, ids []NetID) {
	b.checkOpen()
	b.n.Buses[name] = append([]NetID(nil), ids...)
}

// AddCell appends a cell of the given type driving freshly created output
// nets, and returns those nets. Pin counts are checked against the type.
func (b *Builder) AddCell(t CellType, name string, ins ...NetID) []NetID {
	b.checkOpen()
	min, max := t.InputRange()
	if len(ins) < min || (max >= 0 && len(ins) > max) {
		panic(fmt.Sprintf("netlist: %s cell %q with %d inputs (want %d..%d)", t, name, len(ins), min, max))
	}
	cid := CellID(len(b.n.Cells))
	if name == "" {
		name = fmt.Sprintf("%s%d", t, cid)
	}
	outs := make([]NetID, t.Outputs())
	for i := range outs {
		outs[i] = b.newNet("")
		b.n.Nets[outs[i]].Driver = cid
		b.n.Nets[outs[i]].DriverPin = i
	}
	cell := Cell{ID: cid, Type: t, Name: name, In: append([]NetID(nil), ins...), Out: outs}
	for port, in := range ins {
		b.checkNet(in)
		b.n.Nets[in].Sinks = append(b.n.Nets[in].Sinks, Pin{Cell: cid, Port: port})
	}
	b.n.Cells = append(b.n.Cells, cell)
	return outs
}

// Convenience single-output gate constructors. Each returns the output
// net of a freshly added cell.

// Const returns a constant net of value bit (0 or 1).
func (b *Builder) Const(bit int) NetID {
	if bit == 0 {
		return b.AddCell(Const0, "")[0]
	}
	return b.AddCell(Const1, "")[0]
}

// Buf adds a buffer.
func (b *Builder) Buf(a NetID) NetID { return b.AddCell(Buf, "", a)[0] }

// Not adds an inverter.
func (b *Builder) Not(a NetID) NetID { return b.AddCell(Not, "", a)[0] }

// And adds an n-input AND gate.
func (b *Builder) And(ins ...NetID) NetID { return b.AddCell(And, "", ins...)[0] }

// Nand adds an n-input NAND gate.
func (b *Builder) Nand(ins ...NetID) NetID { return b.AddCell(Nand, "", ins...)[0] }

// Or adds an n-input OR gate.
func (b *Builder) Or(ins ...NetID) NetID { return b.AddCell(Or, "", ins...)[0] }

// Nor adds an n-input NOR gate.
func (b *Builder) Nor(ins ...NetID) NetID { return b.AddCell(Nor, "", ins...)[0] }

// Xor adds an n-input XOR (parity) gate.
func (b *Builder) Xor(ins ...NetID) NetID { return b.AddCell(Xor, "", ins...)[0] }

// Xnor adds an n-input XNOR gate.
func (b *Builder) Xnor(ins ...NetID) NetID { return b.AddCell(Xnor, "", ins...)[0] }

// Mux adds a 2:1 multiplexer returning a when sel=0, b when sel=1.
func (b *Builder) Mux(a, bb, sel NetID) NetID { return b.AddCell(Mux2, "", a, bb, sel)[0] }

// Maj adds a 3-input majority gate.
func (b *Builder) Maj(x, y, z NetID) NetID { return b.AddCell(Maj3, "", x, y, z)[0] }

// HalfAdder adds a compound half-adder cell and returns (sum, carry).
func (b *Builder) HalfAdder(x, y NetID) (sum, carry NetID) {
	outs := b.AddCell(HA, "", x, y)
	return outs[PinSum], outs[PinCarry]
}

// FullAdder adds a compound full-adder cell and returns (sum, cout).
func (b *Builder) FullAdder(x, y, cin NetID) (sum, cout NetID) {
	outs := b.AddCell(FA, "", x, y, cin)
	return outs[PinSum], outs[PinCarry]
}

// DFF adds a D flipflop and returns its Q net.
func (b *Builder) DFF(d NetID) NetID { return b.AddCell(DFF, "", d)[0] }

// DFFChain adds n flipflops in series and returns the final Q (or d
// itself when n == 0).
func (b *Builder) DFFChain(d NetID, n int) NetID {
	for i := 0; i < n; i++ {
		d = b.DFF(d)
	}
	return d
}

// RegisterBus inserts one DFF on every net of the bus and returns the
// registered bus.
func (b *Builder) RegisterBus(bus []NetID) []NetID {
	out := make([]NetID, len(bus))
	for i, id := range bus {
		out[i] = b.DFF(id)
	}
	return out
}

// NumCells returns the number of cells added so far.
func (b *Builder) NumCells() int { return len(b.n.Cells) }

// Net declares a named net with no driver. It must be driven later via
// AddCellDriving (or be re-declared as nothing: Build fails on undriven
// nets). Intended for deserializers that know all net names up front.
func (b *Builder) Net(name string) NetID { return b.newNet(name) }

// AddCellDriving appends a cell whose outputs are pre-declared undriven
// nets rather than freshly created ones. It panics if any output net
// already has a driver.
func (b *Builder) AddCellDriving(t CellType, name string, ins, outs []NetID) CellID {
	b.checkOpen()
	min, max := t.InputRange()
	if len(ins) < min || (max >= 0 && len(ins) > max) {
		panic(fmt.Sprintf("netlist: %s cell %q with %d inputs (want %d..%d)", t, name, len(ins), min, max))
	}
	if len(outs) != t.Outputs() {
		panic(fmt.Sprintf("netlist: %s cell %q with %d outputs (want %d)", t, name, len(outs), t.Outputs()))
	}
	cid := CellID(len(b.n.Cells))
	if name == "" {
		name = fmt.Sprintf("%s%d", t, cid)
	}
	for pin, o := range outs {
		b.checkNet(o)
		if b.n.Nets[o].Driver != NoCell {
			panic(fmt.Sprintf("netlist: net %q already driven by cell %d", b.n.Nets[o].Name, b.n.Nets[o].Driver))
		}
		b.n.Nets[o].Driver = cid
		b.n.Nets[o].DriverPin = pin
	}
	cell := Cell{ID: cid, Type: t, Name: name, In: append([]NetID(nil), ins...), Out: append([]NetID(nil), outs...)}
	for port, in := range ins {
		b.checkNet(in)
		b.n.Nets[in].Sinks = append(b.n.Nets[in].Sinks, Pin{Cell: cid, Port: port})
	}
	b.n.Cells = append(b.n.Cells, cell)
	return cid
}

// RenameNet changes a net's name. The new name must be unused.
func (b *Builder) RenameNet(id NetID, name string) {
	b.checkOpen()
	b.checkNet(id)
	if name == "" {
		panic("netlist: empty net name")
	}
	old := b.n.Nets[id].Name
	if old == name {
		return
	}
	if _, dup := b.n.netByName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate net name %q", name))
	}
	delete(b.n.netByName, old)
	b.n.Nets[id].Name = name
	b.n.netByName[name] = id
}

// Rewire changes input port of cell to read net, updating the sink
// records on both the old and new nets. It is the only way to create
// sequential feedback loops (a cell reading a DFF output that was
// created after it).
func (b *Builder) Rewire(cell CellID, port int, net NetID) {
	b.checkOpen()
	b.checkNet(net)
	if cell < 0 || int(cell) >= len(b.n.Cells) {
		panic(fmt.Sprintf("netlist: invalid cell id %d", cell))
	}
	c := &b.n.Cells[cell]
	if port < 0 || port >= len(c.In) {
		panic(fmt.Sprintf("netlist: cell %q has no input port %d", c.Name, port))
	}
	old := c.In[port]
	if old == net {
		return
	}
	sinks := b.n.Nets[old].Sinks[:0]
	for _, s := range b.n.Nets[old].Sinks {
		if !(s.Cell == cell && s.Port == port) {
			sinks = append(sinks, s)
		}
	}
	b.n.Nets[old].Sinks = sinks
	c.In[port] = net
	b.n.Nets[net].Sinks = append(b.n.Nets[net].Sinks, Pin{Cell: cell, Port: port})
}

// Build validates the netlist and returns it. The builder cannot be used
// afterwards.
func (b *Builder) Build() (*Netlist, error) {
	b.checkOpen()
	if err := b.n.Validate(); err != nil {
		return nil, err
	}
	b.finished = true
	return b.n, nil
}

// MustBuild is Build panicking on error, for circuit generators whose
// structure is correct by construction.
func (b *Builder) MustBuild() *Netlist {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}
