package netlist

import "testing"

func fingerprintTestCircuit(name string, invert bool) *Netlist {
	b := NewBuilder(name)
	a := b.Input("a")
	c := b.Input("b")
	var out NetID
	if invert {
		out = b.Nand(a, c)
	} else {
		out = b.And(a, c)
	}
	b.Output("out", out)
	return b.MustBuild()
}

func TestFingerprintStable(t *testing.T) {
	a := fingerprintTestCircuit("fp", false)
	b := fingerprintTestCircuit("fp", false)
	if a == b {
		t.Fatal("test needs two distinct netlist values")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("structurally identical netlists have different fingerprints")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := fingerprintTestCircuit("fp", false)
	cases := map[string]*Netlist{
		"different cell type": fingerprintTestCircuit("fp", true),
		"different name":      fingerprintTestCircuit("fp2", false),
	}
	for what, other := range cases {
		if base.Fingerprint() == other.Fingerprint() {
			t.Errorf("%s: fingerprints collide", what)
		}
	}
}
