package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Lint is the static companion to Validate: where Validate rejects
// structurally ill-formed netlists, Lint accepts well-formed ones and
// reports the structural smells that make simulations slower, results
// misleading, or circuits simply not what the author meant — before any
// simulation runs. The service surfaces the findings as `warnings` in
// the POST /v1/circuits upload response, `glitchsim lint` prints them,
// and the test suite holds every registry built-in to zero warnings.

// Severity classifies a Finding: warnings indicate probable mistakes
// (all built-in circuits are warning-free), infos are structural
// observations (fanout profile, legal sequential feedback).
type Severity string

const (
	// SeverityWarning marks a probable mistake in the circuit.
	SeverityWarning Severity = "warning"
	// SeverityInfo marks a structural observation, not a defect.
	SeverityInfo Severity = "info"
)

// Finding kinds reported by Lint.
const (
	// KindUnusedInput: a primary input no cell reads (warning). The
	// stimulus toggles it every cycle but nothing can observe it.
	KindUnusedInput = "unused-input"
	// KindUndrivenNet: a non-input net with no driving cell (warning).
	// It would simulate as permanently unknown.
	KindUndrivenNet = "undriven-net"
	// KindDanglingNet: a driven net that is neither read by any cell
	// nor a primary output (info). Its activity is computed and then
	// discarded.
	KindDanglingNet = "dangling-net"
	// KindDeadCell: a cell from which no primary output is reachable
	// (warning). Its entire cone is simulated for nothing.
	KindDeadCell = "dead-cell"
	// KindCombLoop: a cycle of combinational cells (warning). Validate
	// rejects these; Lint reports the cycle for netlists built by hand.
	KindCombLoop = "comb-loop"
	// KindFeedbackLoop: a flipflop whose next-state input depends on
	// its own output (info). Legal and common (accumulators), but worth
	// surfacing: such state never flushes to a function of recent
	// inputs alone.
	KindFeedbackLoop = "feedback-loop"
	// KindFanout: the netlist's fanout profile (info): maximum and mean
	// sinks per driven net.
	KindFanout = "fanout"
	// KindReconvergence: count of reconvergent fanout stems (info) —
	// nets whose fanout branches meet again at a downstream cell.
	// Reconvergence is the structural source of glitches: unequal
	// branch delays race at the meeting cell.
	KindReconvergence = "reconvergence"
)

// A Finding is one lint observation about a netlist.
type Finding struct {
	Kind     string   `json:"kind"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
	// Nets and Cells name the subjects, when the finding has specific
	// ones (capped; the message carries the counts).
	Nets  []string `json:"nets,omitempty"`
	Cells []string `json:"cells,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Severity, f.Kind, f.Message)
}

// HasWarnings reports whether any finding is warning-severity.
func HasWarnings(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == SeverityWarning {
			return true
		}
	}
	return false
}

// subjectCap bounds the per-finding subject lists; messages always
// carry full counts.
const subjectCap = 16

// reconvergenceWorkCap bounds the total cell visits the reconvergence
// scan spends across all stems, so Lint stays near-linear even on
// pathological high-fanout netlists. Past the cap the count is reported
// as a lower bound.
const reconvergenceWorkCap = 1 << 20

// Lint statically analyzes a netlist and returns its findings, most
// severe first (warnings before infos, stable order within each). A
// nil or empty netlist has no findings.
func (n *Netlist) Lint() []Finding {
	if n == nil || len(n.Nets) == 0 {
		return nil
	}
	var fs []Finding
	fs = append(fs, n.lintNets()...)
	fs = append(fs, n.lintDeadCells()...)
	fs = append(fs, n.lintCombLoop()...)
	fs = append(fs, n.lintFeedback()...)
	fs = append(fs, n.lintFanout()...)
	fs = append(fs, n.lintReconvergence()...)
	sort.SliceStable(fs, func(i, j int) bool {
		return fs[i].Severity == SeverityWarning && fs[j].Severity != SeverityWarning
	})
	return fs
}

// lintNets covers the per-net checks: unused inputs, undriven nets,
// dangling nets.
func (n *Netlist) lintNets() []Finding {
	po := make(map[NetID]bool, len(n.POs))
	for _, id := range n.POs {
		po[id] = true
	}
	pi := make(map[NetID]bool, len(n.PIs))
	for _, id := range n.PIs {
		pi[id] = true
	}
	var unused, undriven, dangling []string
	for i := range n.Nets {
		net := &n.Nets[i]
		driverless := net.Driver == NoCell || int(net.Driver) >= len(n.Cells)
		switch {
		case driverless && pi[net.ID]:
			if len(net.Sinks) == 0 && !po[net.ID] {
				unused = append(unused, net.Name)
			}
		case driverless:
			// No driver and not a declared primary input: floating.
			undriven = append(undriven, net.Name)
		case len(net.Sinks) == 0 && !po[net.ID]:
			dangling = append(dangling, net.Name)
		}
	}
	var fs []Finding
	if len(unused) > 0 {
		fs = append(fs, Finding{
			Kind: KindUnusedInput, Severity: SeverityWarning,
			Message: fmt.Sprintf("%d primary input(s) are never read: %s", len(unused), joinCapped(unused)),
			Nets:    capped(unused),
		})
	}
	if len(undriven) > 0 {
		fs = append(fs, Finding{
			Kind: KindUndrivenNet, Severity: SeverityWarning,
			Message: fmt.Sprintf("%d net(s) have no driver and are not primary inputs: %s", len(undriven), joinCapped(undriven)),
			Nets:    capped(undriven),
		})
	}
	if len(dangling) > 0 {
		fs = append(fs, Finding{
			Kind: KindDanglingNet, Severity: SeverityInfo,
			Message: fmt.Sprintf("%d driven net(s) are neither read nor primary outputs: %s", len(dangling), joinCapped(dangling)),
			Nets:    capped(dangling),
		})
	}
	return fs
}

// lintDeadCells reports cells outside the fanin cone of every primary
// output: backward reachability from the POs over net drivers.
func (n *Netlist) lintDeadCells() []Finding {
	if len(n.Cells) == 0 {
		return nil
	}
	liveCell := make([]bool, len(n.Cells))
	netSeen := make([]bool, len(n.Nets))
	var stack []NetID
	for _, id := range n.POs {
		if !netSeen[id] {
			netSeen[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := n.Nets[id].Driver
		if d == NoCell || int(d) >= len(n.Cells) {
			continue
		}
		if liveCell[d] {
			continue
		}
		liveCell[d] = true
		for _, in := range n.Cells[d].In {
			if in >= 0 && int(in) < len(n.Nets) && !netSeen[in] {
				netSeen[in] = true
				stack = append(stack, in)
			}
		}
	}
	var dead []string
	for i := range n.Cells {
		if !liveCell[i] {
			dead = append(dead, cellLabel(&n.Cells[i]))
		}
	}
	if len(dead) == 0 {
		return nil
	}
	return []Finding{{
		Kind: KindDeadCell, Severity: SeverityWarning,
		Message: fmt.Sprintf("%d cell(s) reach no primary output: %s", len(dead), joinCapped(dead)),
		Cells:   capped(dead),
	}}
}

// lintCombLoop reports one combinational cycle, if any, reusing
// Validate's cycle finder.
func (n *Netlist) lintCombLoop() []Finding {
	cycle := n.findCombinationalCycle()
	if len(cycle) == 0 {
		return nil
	}
	names := make([]string, 0, len(cycle))
	for _, cid := range cycle {
		names = append(names, cellLabel(&n.Cells[cid]))
	}
	return []Finding{{
		Kind: KindCombLoop, Severity: SeverityWarning,
		Message: fmt.Sprintf("combinational cycle through %d cell(s): %s", len(cycle), joinCapped(names)),
		Cells:   capped(names),
	}}
}

// lintFeedback reports flipflops on sequential feedback loops: DFFs
// whose D input transitively depends on their own Q output through
// combinational logic and other DFFs. Uses the same DFF-predecessor
// graph as SequentialLevels, then marks every DFF inside a strongly
// connected component (or with a self edge).
func (n *Netlist) lintFeedback() []Finding {
	var dffs []CellID
	cellToDFF := make([]int, len(n.Cells))
	for i := range n.Cells {
		cellToDFF[i] = -1
		if n.Cells[i].Type == DFF {
			cellToDFF[i] = len(dffs)
			dffs = append(dffs, CellID(i))
		}
	}
	if len(dffs) == 0 {
		return nil
	}
	preds := n.dffPreds(dffs, cellToDFF)

	// Tarjan-style SCC via iterative Kosaraju would be overkill here:
	// DFF counts are small. Mark feedback DFFs as those that can reach
	// themselves through the predecessor graph (preds is a reachability
	// question in either direction around a cycle).
	inLoop := make([]bool, len(dffs))
	mark := make([]int, len(dffs))
	var stack []int
	for di := range dffs {
		epoch := di + 1
		stack = append(stack[:0], preds[di]...)
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if p == di {
				inLoop[di] = true
				break
			}
			if mark[p] == epoch {
				continue
			}
			mark[p] = epoch
			stack = append(stack, preds[p]...)
		}
	}
	var names []string
	for di, cid := range dffs {
		if inLoop[di] {
			names = append(names, cellLabel(&n.Cells[cid]))
		}
	}
	if len(names) == 0 {
		return nil
	}
	return []Finding{{
		Kind: KindFeedbackLoop, Severity: SeverityInfo,
		Message: fmt.Sprintf("%d flipflop(s) sit on sequential feedback loops: %s", len(names), joinCapped(names)),
		Cells:   capped(names),
	}}
}

// dffPreds builds, for each DFF, the list of DFFs whose Q reaches its D
// input through combinational logic — the SequentialLevels dependency
// graph.
func (n *Netlist) dffPreds(dffs []CellID, cellToDFF []int) [][]int {
	preds := make([][]int, len(dffs))
	netMark := make([]int, len(n.Nets))
	predMark := make([]int, len(dffs))
	var stack []NetID
	for di, cid := range dffs {
		epoch := di + 1
		stack = append(stack[:0], n.Cells[cid].In[0])
		for len(stack) > 0 {
			net := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if net < 0 || int(net) >= len(n.Nets) || netMark[net] == epoch {
				continue
			}
			netMark[net] = epoch
			d := n.Nets[net].Driver
			if d == NoCell || int(d) >= len(n.Cells) {
				continue
			}
			if n.Cells[d].Type == DFF {
				if p := cellToDFF[d]; predMark[p] != epoch {
					predMark[p] = epoch
					preds[di] = append(preds[di], p)
				}
				continue
			}
			stack = append(stack, n.Cells[d].In...)
		}
		sort.Ints(preds[di])
	}
	return preds
}

// lintFanout reports the fanout profile of driven nets.
func (n *Netlist) lintFanout() []Finding {
	maxFan, total, driven := 0, 0, 0
	maxNet := ""
	for i := range n.Nets {
		net := &n.Nets[i]
		driven++
		total += len(net.Sinks)
		if len(net.Sinks) > maxFan {
			maxFan, maxNet = len(net.Sinks), net.Name
		}
	}
	if driven == 0 {
		return nil
	}
	return []Finding{{
		Kind: KindFanout, Severity: SeverityInfo,
		Message: fmt.Sprintf("max %d (net %q), mean %.2f over %d nets", maxFan, maxNet, float64(total)/float64(driven), driven),
	}}
}

// lintReconvergence counts reconvergent fanout stems: nets with >= 2
// sinks whose branches meet again at a downstream cell (through
// combinational logic; flipflops cut the propagation). Each stem is
// scanned by a forward branch-marking BFS — a cell first reached via
// two different branches of the stem is a reconvergence point — with
// total work across stems capped at reconvergenceWorkCap.
func (n *Netlist) lintReconvergence() []Finding {
	// branch[c] is the branch index (1-based) that first reached cell
	// c in the current epoch; reconv[c] records cells already counted.
	branch := make([]int32, len(n.Cells))
	epochOf := make([]int, len(n.Cells))
	stems, points := 0, 0
	work := 0
	truncated := false
	type item struct {
		cell CellID
		br   int32
	}
	var queue []item
	epoch := 0
	for i := range n.Nets {
		net := &n.Nets[i]
		if len(net.Sinks) < 2 {
			continue
		}
		epoch++
		queue = queue[:0]
		for bi, sink := range net.Sinks {
			queue = append(queue, item{sink.Cell, int32(bi + 1)})
		}
		stemReconverges := false
		for len(queue) > 0 {
			if work >= reconvergenceWorkCap {
				truncated = true
				break
			}
			work++
			it := queue[0]
			queue = queue[1:]
			c := it.cell
			if c == NoCell || int(c) >= len(n.Cells) {
				continue
			}
			if epochOf[c] == epoch {
				if branch[c] != it.br && branch[c] != -1 {
					// Reached via a second distinct branch:
					// reconvergence point.
					if !stemReconverges {
						stemReconverges = true
						stems++
					}
					points++
					branch[c] = -1 // count each meeting cell once per stem
				}
				continue
			}
			epochOf[c] = epoch
			branch[c] = it.br
			cell := &n.Cells[c]
			if cell.Type == DFF {
				continue // sequential boundary: races can't cross it
			}
			for _, out := range cell.Out {
				if out == NoNet || int(out) >= len(n.Nets) {
					continue
				}
				for _, sink := range n.Nets[out].Sinks {
					queue = append(queue, item{sink.Cell, it.br})
				}
			}
		}
		if truncated {
			break
		}
	}
	if stems == 0 && !truncated {
		return nil
	}
	msg := fmt.Sprintf("%d reconvergent fanout stem(s) with %d meeting point(s) — unequal branch delays race there", stems, points)
	if truncated {
		msg = fmt.Sprintf("at least %d reconvergent fanout stem(s) with %d meeting point(s) (scan capped)", stems, points)
	}
	return []Finding{{Kind: KindReconvergence, Severity: SeverityInfo, Message: msg}}
}

// cellLabel names a cell for findings: its name when set, else
// type#id.
func cellLabel(c *Cell) string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("%s#%d", c.Type, c.ID)
}

// capped returns at most subjectCap entries of names.
func capped(names []string) []string {
	if len(names) > subjectCap {
		return names[:subjectCap:subjectCap]
	}
	return names
}

// joinCapped renders names for a message, eliding past the cap.
func joinCapped(names []string) string {
	if len(names) <= subjectCap {
		return strings.Join(names, ", ")
	}
	return strings.Join(names[:subjectCap], ", ") + ", …"
}
