package netlist

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonNetlist is the serialized form: cells reference nets by name, so
// the format is stable under renumbering and human-diffable.
type jsonNetlist struct {
	Name string   `json:"name"`
	PIs  []string `json:"inputs"`
	POs  []string `json:"outputs"`
	// Nets lists every net name in net-ID order. It is optional on
	// input: when present, ReadJSON recreates nets in exactly this
	// order, so the decoded netlist reproduces the original net
	// numbering and with it the original Fingerprint. When absent,
	// nets are numbered inputs-first then cell outputs in cell order.
	Nets  []string            `json:"nets,omitempty"`
	Cells []jsonCell          `json:"cells"`
	Buses map[string][]string `json:"buses,omitempty"`
}

type jsonCell struct {
	Type string   `json:"type"`
	Name string   `json:"name,omitempty"`
	In   []string `json:"in"`
	Out  []string `json:"out"`
}

var typeByName = func() map[string]CellType {
	m := make(map[string]CellType, int(numCellTypes))
	for t := CellType(0); t < numCellTypes; t++ {
		m[t.String()] = t
	}
	return m
}()

// WriteJSON serializes the netlist as indented JSON.
func (n *Netlist) WriteJSON(w io.Writer) error {
	jn := jsonNetlist{Name: n.Name, Buses: map[string][]string{}}
	netName := func(id NetID) string { return n.Nets[id].Name }
	for _, pi := range n.PIs {
		jn.PIs = append(jn.PIs, netName(pi))
	}
	for _, po := range n.POs {
		jn.POs = append(jn.POs, netName(po))
	}
	for i := range n.Nets {
		jn.Nets = append(jn.Nets, n.Nets[i].Name)
	}
	for i := range n.Cells {
		c := &n.Cells[i]
		jc := jsonCell{Type: c.Type.String(), Name: c.Name}
		for _, in := range c.In {
			jc.In = append(jc.In, netName(in))
		}
		for _, o := range c.Out {
			jc.Out = append(jc.Out, netName(o))
		}
		jn.Cells = append(jn.Cells, jc)
	}
	for bus, ids := range n.Buses {
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = netName(id)
		}
		jn.Buses[bus] = names
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jn)
}

// ReadJSON deserializes a netlist written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Netlist, error) {
	var jn jsonNetlist
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jn); err != nil {
		return nil, fmt.Errorf("netlist: decoding JSON: %w", err)
	}
	b := NewBuilder(jn.Name)
	nets := map[string]NetID{}
	inputSet := make(map[string]bool, len(jn.PIs))
	for _, pi := range jn.PIs {
		if inputSet[pi] {
			return nil, fmt.Errorf("netlist: duplicate input %q", pi)
		}
		inputSet[pi] = true
	}
	ordered := len(jn.Nets) > 0
	if ordered {
		// Declare every net up front in the serialized ID order, so the
		// decoded netlist reproduces the original numbering (and with it
		// the Fingerprint).
		var piOrder []string
		for _, name := range jn.Nets {
			if _, dup := nets[name]; dup {
				return nil, fmt.Errorf("netlist: duplicate net %q", name)
			}
			if inputSet[name] {
				nets[name] = b.Input(name)
				piOrder = append(piOrder, name)
			} else {
				nets[name] = b.Net(name)
			}
		}
		if len(piOrder) != len(jn.PIs) {
			return nil, fmt.Errorf("netlist: %d inputs declared but %d appear in nets", len(jn.PIs), len(piOrder))
		}
		for i, pi := range jn.PIs {
			if piOrder[i] != pi {
				return nil, fmt.Errorf("netlist: input order mismatch: inputs[%d]=%q but nets order gives %q", i, pi, piOrder[i])
			}
		}
	} else {
		for _, pi := range jn.PIs {
			nets[pi] = b.Input(pi)
		}
	}

	// Phase 1: declare (or, in ordered mode, look up) every cell output
	// net so arbitrary (including feedback) references resolve. Phase 2:
	// create the cells driving those nets.
	driven := make(map[string]bool, len(jn.Cells))
	for ci, jc := range jn.Cells {
		t, ok := typeByName[jc.Type]
		if !ok {
			return nil, fmt.Errorf("netlist: cell %d has unknown type %q", ci, jc.Type)
		}
		if len(jc.Out) != t.Outputs() {
			return nil, fmt.Errorf("netlist: cell %d (%s) has %d outputs, want %d", ci, jc.Type, len(jc.Out), t.Outputs())
		}
		min, max := t.InputRange()
		if len(jc.In) < min || (max >= 0 && len(jc.In) > max) {
			return nil, fmt.Errorf("netlist: cell %d (%s) has %d inputs, want %d..%d", ci, jc.Type, len(jc.In), min, max)
		}
		for _, outName := range jc.Out {
			if ordered {
				if _, ok := nets[outName]; !ok {
					return nil, fmt.Errorf("netlist: cell %d output references net %q missing from nets order", ci, outName)
				}
				if inputSet[outName] || driven[outName] {
					return nil, fmt.Errorf("netlist: net %q driven twice", outName)
				}
			} else {
				if _, dup := nets[outName]; dup {
					return nil, fmt.Errorf("netlist: net %q driven twice", outName)
				}
				nets[outName] = b.Net(outName)
			}
			driven[outName] = true
		}
	}
	for _, jc := range jn.Cells {
		t := typeByName[jc.Type]
		ins := make([]NetID, len(jc.In))
		for port, name := range jc.In {
			id, ok := nets[name]
			if !ok {
				return nil, fmt.Errorf("netlist: cell input references unknown net %q", name)
			}
			ins[port] = id
		}
		outs := make([]NetID, len(jc.Out))
		for pin, name := range jc.Out {
			outs[pin] = nets[name]
		}
		b.AddCellDriving(t, jc.Name, ins, outs)
	}

	for _, po := range jn.POs {
		id, ok := nets[po]
		if !ok {
			return nil, fmt.Errorf("netlist: output references unknown net %q", po)
		}
		b.Output("", id)
	}
	for bus, names := range jn.Buses {
		ids := make([]NetID, len(names))
		for i, name := range names {
			id, ok := nets[name]
			if !ok {
				return nil, fmt.Errorf("netlist: bus %q references unknown net %q", bus, name)
			}
			ids[i] = id
		}
		b.NameBus(bus, ids)
	}
	return b.Build()
}
