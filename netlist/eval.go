package netlist

import (
	"fmt"

	"glitchsim/internal/logic"
)

// Eval computes the combinational outputs of a cell of type t from its
// input values, writing them into out (which must have length
// t.Outputs()). DFF cells are not combinational; evaluating one returns
// its input unchanged (the value a transparent latch would pass), and the
// simulator must never call Eval for DFFs during intra-cycle propagation.
func Eval(t CellType, in []logic.V, out []logic.V) {
	switch t {
	case Const0:
		out[0] = logic.L0
	case Const1:
		out[0] = logic.L1
	case Buf:
		out[0] = in[0]
	case Not:
		out[0] = logic.Not(in[0])
	case And:
		out[0] = logic.And(in...)
	case Nand:
		out[0] = logic.Not(logic.And(in...))
	case Or:
		out[0] = logic.Or(in...)
	case Nor:
		out[0] = logic.Not(logic.Or(in...))
	case Xor:
		out[0] = logic.Xor(in...)
	case Xnor:
		out[0] = logic.Not(logic.Xor(in...))
	case Mux2:
		out[0] = logic.Mux(in[2], in[0], in[1])
	case Maj3:
		out[0] = logic.Maj3(in[0], in[1], in[2])
	case HA:
		out[PinSum], out[PinCarry] = logic.HalfAdd(in[0], in[1])
	case FA:
		out[PinSum], out[PinCarry] = logic.FullAdd(in[0], in[1], in[2])
	case DFF:
		out[0] = in[0]
	default:
		panic(fmt.Sprintf("netlist: Eval of unknown cell type %d", t))
	}
}

// EvalOutputs evaluates every combinational cell of the netlist in
// topological order given primary-input and DFF-output values, returning
// the zero-delay steady-state value of every net. The values slice is
// indexed by NetID; entries for PIs and DFF outputs must be set by the
// caller, all other entries are overwritten. It is the reference
// functional model the event-driven simulator is tested against.
func (n *Netlist) EvalOutputs(values []logic.V) {
	order := n.TopoOrder()
	var inBuf [8]logic.V
	var outBuf [2]logic.V
	for _, cid := range order {
		c := &n.Cells[cid]
		if c.Type == DFF {
			continue
		}
		ins := inBuf[:0]
		for _, in := range c.In {
			ins = append(ins, values[in])
		}
		outs := outBuf[:len(c.Out)]
		Eval(c.Type, ins, outs)
		for pin, o := range c.Out {
			if o != NoNet {
				values[o] = outs[pin]
			}
		}
	}
}
