package netlist

import "sort"

// SequentialLevels returns the length of the longest acyclic
// register-to-register chain in the netlist: the number of DFFs on the
// longest path PI → DFF → … → DFF where consecutive DFFs are connected
// through combinational logic. Feedback edges (a DFF reachable from
// itself, as in an accumulator) do not extend the chain. A purely
// combinational netlist has 0 levels; a circuit whose every DFF is fed
// directly from primary inputs has 1.
//
// The value is the number of clock cycles needed to flush unknown
// initial state through a pipeline, which is what Config defaulting uses
// it for.
func (n *Netlist) SequentialLevels() int {
	var dffs []CellID
	cellToDFF := make([]int, len(n.Cells))
	for i := range n.Cells {
		cellToDFF[i] = -1
		if n.Cells[i].Type == DFF {
			cellToDFF[i] = len(dffs)
			dffs = append(dffs, CellID(i))
		}
	}
	if len(dffs) == 0 {
		return 0
	}

	// preds[i] lists the DFFs whose Q reaches DFF i's D input through
	// combinational cells, found by reverse DFS that stops at primary
	// inputs and DFF outputs.
	preds := make([][]int, len(dffs))
	netMark := make([]int, len(n.Nets))
	predMark := make([]int, len(dffs))
	var stack []NetID
	for di, cid := range dffs {
		epoch := di + 1
		stack = append(stack[:0], n.Cells[cid].In[0])
		for len(stack) > 0 {
			net := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if netMark[net] == epoch {
				continue
			}
			netMark[net] = epoch
			d := n.Nets[net].Driver
			if d == NoCell {
				continue
			}
			if n.Cells[d].Type == DFF {
				if p := cellToDFF[d]; predMark[p] != epoch {
					predMark[p] = epoch
					preds[di] = append(preds[di], p)
				}
				continue
			}
			stack = append(stack, n.Cells[d].In...)
		}
		sort.Ints(preds[di])
	}

	// Longest path over the DFF dependency graph by DFS, ignoring back
	// edges (edges into a node still on the stack) so feedback loops
	// terminate. Iteration order is fixed, so the result is
	// deterministic for a given netlist.
	const (
		white = iota
		gray
		black
	)
	state := make([]uint8, len(dffs))
	level := make([]int, len(dffs))
	type frame struct{ node, next int }
	var frames []frame
	worst := 0
	for root := range dffs {
		if state[root] != white {
			continue
		}
		state[root] = gray
		frames = append(frames[:0], frame{root, 0})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(preds[f.node]) {
				p := preds[f.node][f.next]
				f.next++
				if state[p] == white {
					state[p] = gray
					frames = append(frames, frame{p, 0})
				}
				continue
			}
			lvl := 1
			for _, p := range preds[f.node] {
				if state[p] == black && level[p]+1 > lvl {
					lvl = level[p] + 1
				}
			}
			level[f.node] = lvl
			state[f.node] = black
			if lvl > worst {
				worst = lvl
			}
			frames = frames[:len(frames)-1]
		}
	}
	return worst
}
