package netlist

import (
	"strings"
	"testing"
)

// findKind returns the findings of one kind.
func findKind(fs []Finding, kind string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// TestLintCleanCircuit: a straightforward adder-ish circuit has no
// warnings — only the fanout/reconvergence profile infos.
func TestLintCleanCircuit(t *testing.T) {
	b := NewBuilder("clean")
	a := b.Input("a")
	c := b.Input("b")
	sum, carry := b.HalfAdder(a, c)
	b.Output("sum", sum)
	b.Output("carry", carry)
	n := b.MustBuild()

	fs := n.Lint()
	if HasWarnings(fs) {
		t.Fatalf("clean circuit has warnings: %v", fs)
	}
	if len(findKind(fs, KindFanout)) != 1 {
		t.Errorf("want exactly one fanout profile finding, got %v", fs)
	}
}

// TestLintUnusedInput: a floating primary input is a warning naming the
// net.
func TestLintUnusedInput(t *testing.T) {
	b := NewBuilder("floating")
	a := b.Input("a")
	b.Input("unused")
	b.Output("o", b.Not(a))
	n := b.MustBuild()

	fs := findKind(n.Lint(), KindUnusedInput)
	if len(fs) != 1 || fs[0].Severity != SeverityWarning {
		t.Fatalf("want one unused-input warning, got %v", fs)
	}
	if !strings.Contains(fs[0].Message, "unused") || len(fs[0].Nets) != 1 || fs[0].Nets[0] != "unused" {
		t.Errorf("finding does not name the floating input: %+v", fs[0])
	}
}

// TestLintDeadCone: cells that reach no primary output are dead, and
// their unread result net dangles.
func TestLintDeadCone(t *testing.T) {
	b := NewBuilder("deadcone")
	a := b.Input("a")
	c := b.Input("b")
	b.Output("o", b.Xor(a, c))
	// A two-cell cone nobody exports.
	b.And(b.Not(a), c)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	fs := n.Lint()
	dead := findKind(fs, KindDeadCell)
	if len(dead) != 1 || dead[0].Severity != SeverityWarning {
		t.Fatalf("want one dead-cell warning, got %v", fs)
	}
	if !strings.Contains(dead[0].Message, "2 cell(s)") {
		t.Errorf("want both cone cells dead, got %q", dead[0].Message)
	}
	if dangling := findKind(fs, KindDanglingNet); len(dangling) != 1 {
		t.Errorf("want the unread and-output reported dangling, got %v", fs)
	}
}

// TestLintReconvergentDiamond: one stem whose branches meet again.
func TestLintReconvergentDiamond(t *testing.T) {
	b := NewBuilder("diamond")
	a := b.Input("a")
	b.Output("o", b.And(b.Not(a), b.Buf(a)))
	n := b.MustBuild()

	fs := findKind(n.Lint(), KindReconvergence)
	if len(fs) != 1 || fs[0].Severity != SeverityInfo {
		t.Fatalf("want one reconvergence info, got %v", n.Lint())
	}
	if !strings.Contains(fs[0].Message, "1 reconvergent fanout stem(s)") {
		t.Errorf("want one stem counted, got %q", fs[0].Message)
	}
}

// TestLintFeedbackLoop: an accumulator's register feeds itself — an
// info, not a warning (the accum16 built-in is exactly this shape).
func TestLintFeedbackLoop(t *testing.T) {
	b := NewBuilder("accum1")
	in := b.Input("in")
	q := b.Net("q")
	sum := b.Xor(in, q)
	b.AddCellDriving(DFF, "reg", []NetID{sum}, []NetID{q})
	b.Output("out", q)
	n := b.MustBuild()

	fs := n.Lint()
	if HasWarnings(fs) {
		t.Fatalf("legal feedback must not warn: %v", fs)
	}
	fb := findKind(fs, KindFeedbackLoop)
	if len(fb) != 1 || len(fb[0].Cells) != 1 || fb[0].Cells[0] != "reg" {
		t.Fatalf("want one feedback-loop info naming reg, got %v", fs)
	}
}

// TestLintUndrivenAndCombLoop exercises the checks Validate would
// reject, on hand-built netlists that bypass the Builder.
func TestLintUndrivenAndCombLoop(t *testing.T) {
	undriven := &Netlist{
		Name: "undriven",
		Nets: []Net{
			{ID: 0, Name: "p", Driver: NoCell, Sinks: []Pin{{Cell: 0, Port: 0}}},
			{ID: 1, Name: "ghost", Driver: NoCell, Sinks: []Pin{{Cell: 0, Port: 1}}},
			{ID: 2, Name: "o", Driver: 0, DriverPin: 0},
		},
		Cells: []Cell{{ID: 0, Type: And, Name: "g", In: []NetID{0, 1}, Out: []NetID{2}}},
		PIs:   []NetID{0},
		POs:   []NetID{2},
	}
	fs := findKind(undriven.Lint(), KindUndrivenNet)
	if len(fs) != 1 || fs[0].Severity != SeverityWarning || fs[0].Nets[0] != "ghost" {
		t.Fatalf("want one undriven-net warning naming ghost, got %v", undriven.Lint())
	}

	loop := &Netlist{
		Name: "combloop",
		Nets: []Net{
			{ID: 0, Name: "x", Driver: 0, DriverPin: 0, Sinks: []Pin{{Cell: 1, Port: 0}}},
			{ID: 1, Name: "y", Driver: 1, DriverPin: 0, Sinks: []Pin{{Cell: 0, Port: 0}}},
			{ID: 2, Name: "p", Driver: NoCell, Sinks: []Pin{{Cell: 0, Port: 1}}},
		},
		Cells: []Cell{
			{ID: 0, Type: And, Name: "g0", In: []NetID{1, 2}, Out: []NetID{0}},
			{ID: 1, Type: Buf, Name: "g1", In: []NetID{0}, Out: []NetID{1}},
		},
		PIs: []NetID{2},
		POs: []NetID{0},
	}
	fs = findKind(loop.Lint(), KindCombLoop)
	if len(fs) != 1 || fs[0].Severity != SeverityWarning {
		t.Fatalf("want one comb-loop warning, got %v", loop.Lint())
	}
	if len(fs[0].Cells) != 2 {
		t.Errorf("want both cycle cells named, got %+v", fs[0])
	}
}

// TestLintOrdering: warnings sort before infos.
func TestLintOrdering(t *testing.T) {
	b := NewBuilder("mixed")
	a := b.Input("a")
	b.Input("unused")
	b.Output("o", b.And(b.Not(a), b.Buf(a)))
	n := b.MustBuild()

	fs := n.Lint()
	sawInfo := false
	for _, f := range fs {
		if f.Severity == SeverityInfo {
			sawInfo = true
		} else if sawInfo {
			t.Fatalf("warning after info in %v", fs)
		}
	}
}
