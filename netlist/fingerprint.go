package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Fingerprint returns a stable identity for the netlist's full structure:
// name, cells (type, name, pin connections), nets (name, driver), primary
// inputs/outputs and buses. Two netlists have equal fingerprints exactly
// when they are structurally identical, so separately built copies of the
// same generated circuit (e.g. two NewRCA(16) calls) share one
// fingerprint. The Engine's compiled-netlist cache uses this as its key,
// letting a service that rebuilds circuits per request still reuse the
// compiled form.
//
// The fingerprint is a hex-encoded SHA-256, cheap relative to Compile
// (one linear pass, no validation or topological evaluation).
func (n *Netlist) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(len(s))
		h.Write([]byte(s))
	}

	writeStr(n.Name)
	writeInt(len(n.Cells))
	for i := range n.Cells {
		c := &n.Cells[i]
		writeInt(int(c.Type))
		writeStr(c.Name)
		writeInt(len(c.In))
		for _, id := range c.In {
			writeInt(int(id))
		}
		writeInt(len(c.Out))
		for _, id := range c.Out {
			writeInt(int(id))
		}
	}
	writeInt(len(n.Nets))
	for i := range n.Nets {
		net := &n.Nets[i]
		writeStr(net.Name)
		writeInt(int(net.Driver))
		writeInt(net.DriverPin)
	}
	writeInt(len(n.PIs))
	for _, id := range n.PIs {
		writeInt(int(id))
	}
	writeInt(len(n.POs))
	for _, id := range n.POs {
		writeInt(int(id))
	}
	// Buses in sorted name order: map iteration order must not leak into
	// the fingerprint.
	names := make([]string, 0, len(n.Buses))
	for name := range n.Buses {
		names = append(names, name)
	}
	sort.Strings(names)
	writeInt(len(names))
	for _, name := range names {
		writeStr(name)
		ids := n.Buses[name]
		writeInt(len(ids))
		for _, id := range ids {
			writeInt(int(id))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
