package netlist

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT emits the netlist as a Graphviz digraph: cells are boxes (DFFs
// doubled), primary inputs/outputs are ovals, edges are nets.
func (n *Netlist) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", n.Name)
	for _, pi := range n.PIs {
		fmt.Fprintf(&b, "  %q [shape=oval, color=blue];\n", "PI:"+n.Nets[pi].Name)
	}
	for i := range n.Cells {
		c := &n.Cells[i]
		shape := "box"
		if c.Type == DFF {
			shape = "box, peripheries=2"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=%q];\n", cellNode(c), shape,
			fmt.Sprintf("%s\\n%s", c.Name, c.Type))
	}
	for i := range n.Nets {
		net := &n.Nets[i]
		src := ""
		if net.IsPrimaryInput() {
			src = "PI:" + net.Name
		} else {
			src = cellNode(&n.Cells[net.Driver])
		}
		for _, s := range net.Sinks {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", src, cellNode(&n.Cells[s.Cell]), net.Name)
		}
	}
	for _, po := range n.POs {
		net := &n.Nets[po]
		fmt.Fprintf(&b, "  %q [shape=oval, color=red];\n", "PO:"+net.Name)
		src := "PI:" + net.Name
		if !net.IsPrimaryInput() {
			src = cellNode(&n.Cells[net.Driver])
		}
		fmt.Fprintf(&b, "  %q -> %q;\n", src, "PO:"+net.Name)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func cellNode(c *Cell) string { return fmt.Sprintf("c%d:%s", c.ID, c.Name) }

// Summary returns a human-readable one-paragraph description of the
// netlist: cell counts by type, net count, I/O widths and logic depth.
func (n *Netlist) Summary() string {
	counts := n.CellCounts()
	types := make([]CellType, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d cells, %d nets, %d PIs, %d POs, depth %d\n",
		n.Name, len(n.Cells), len(n.Nets), len(n.PIs), len(n.POs), n.LogicDepth())
	for _, t := range types {
		fmt.Fprintf(&b, "  %-7s %d\n", t.String(), counts[t])
	}
	return b.String()
}
