package netlist

import (
	"strings"
	"testing"

	"glitchsim/internal/logic"
)

// buildXorFA builds a gate-level full adder: s = a^b^cin, co = maj(a,b,cin)
// decomposed into 2-input gates.
func buildXorFA(t *testing.T) (*Netlist, []NetID) {
	t.Helper()
	b := NewBuilder("fa_gates")
	a := b.Input("a")
	bb := b.Input("b")
	cin := b.Input("cin")
	axb := b.Xor(a, bb)
	s := b.Xor(axb, cin)
	co := b.Or(b.And(a, bb), b.And(axb, cin))
	b.Output("s", s)
	b.Output("co", co)
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n, []NetID{s, co}
}

func TestBuilderBasics(t *testing.T) {
	n, outs := buildXorFA(t)
	if n.NumCells() != 5 {
		t.Errorf("cells = %d, want 5", n.NumCells())
	}
	if n.InputWidth() != 3 || n.OutputWidth() != 2 {
		t.Errorf("io = %d/%d, want 3/2", n.InputWidth(), n.OutputWidth())
	}
	if n.NetByName("a") == NoNet || n.NetByName("nope") != NoNet {
		t.Error("NetByName lookup wrong")
	}
	if len(n.InternalNets()) != n.NumNets()-3 {
		t.Error("InternalNets should exclude the 3 PIs")
	}
	for _, o := range outs {
		if n.Net(o).IsPrimaryInput() {
			t.Error("output net claims to be PI")
		}
	}
}

func TestCellTypeMeta(t *testing.T) {
	if FA.Outputs() != 2 || Not.Outputs() != 1 {
		t.Error("Outputs wrong")
	}
	min, max := And.InputRange()
	if min != 2 || max != -1 {
		t.Error("And range wrong")
	}
	if !DFF.Sequential() || FA.Sequential() {
		t.Error("Sequential wrong")
	}
	if And.String() != "and" || DFF.String() != "dff" {
		t.Error("String wrong")
	}
	if !strings.Contains(CellType(200).String(), "200") {
		t.Error("unknown type String wrong")
	}
}

func TestEvalFullAdderExhaustive(t *testing.T) {
	n, outs := buildXorFA(t)
	vals := make([]logic.V, n.NumNets())
	for u := uint64(0); u < 8; u++ {
		vals[n.NetByName("a")] = logic.FromBit(u)
		vals[n.NetByName("b")] = logic.FromBit(u >> 1)
		vals[n.NetByName("cin")] = logic.FromBit(u >> 2)
		n.EvalOutputs(vals)
		total := (u & 1) + (u >> 1 & 1) + (u >> 2 & 1)
		if vals[outs[0]].Bit() != total&1 {
			t.Errorf("inputs %03b: sum = %v", u, vals[outs[0]])
		}
		if vals[outs[1]].Bit() != total>>1 {
			t.Errorf("inputs %03b: cout = %v", u, vals[outs[1]])
		}
	}
}

func TestEvalCompoundCells(t *testing.T) {
	b := NewBuilder("compound")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	s, co := b.FullAdder(x, y, z)
	hs, hc := b.HalfAdder(x, y)
	m := b.Mux(x, y, z)
	mj := b.Maj(x, y, z)
	b.Output("s", s)
	b.Output("co", co)
	b.Output("hs", hs)
	b.Output("hc", hc)
	b.Output("m", m)
	b.Output("mj", mj)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]logic.V, n.NumNets())
	for u := uint64(0); u < 8; u++ {
		xb, yb, zb := u&1, u>>1&1, u>>2&1
		vals[x], vals[y], vals[z] = logic.FromBit(xb), logic.FromBit(yb), logic.FromBit(zb)
		n.EvalOutputs(vals)
		if vals[s].Bit() != (xb+yb+zb)&1 || vals[co].Bit() != (xb+yb+zb)>>1 {
			t.Errorf("FA(%d%d%d) wrong", xb, yb, zb)
		}
		if vals[hs].Bit() != (xb+yb)&1 || vals[hc].Bit() != (xb+yb)>>1 {
			t.Errorf("HA(%d%d) wrong", xb, yb)
		}
		wantM := xb
		if zb == 1 {
			wantM = yb
		}
		if vals[m].Bit() != wantM {
			t.Errorf("Mux(%d,%d,%d) = %v, want %d", xb, yb, zb, vals[m], wantM)
		}
		if vals[mj].Bit() != map[bool]uint64{true: 1, false: 0}[xb+yb+zb >= 2] {
			t.Errorf("Maj wrong")
		}
	}
}

func TestEvalAllGateTypes(t *testing.T) {
	b := NewBuilder("gates")
	x := b.Input("x")
	y := b.Input("y")
	outs := map[string]NetID{
		"c0":   b.Const(0),
		"c1":   b.Const(1),
		"buf":  b.Buf(x),
		"not":  b.Not(x),
		"and":  b.And(x, y),
		"nand": b.Nand(x, y),
		"or":   b.Or(x, y),
		"nor":  b.Nor(x, y),
		"xor":  b.Xor(x, y),
		"xnor": b.Xnor(x, y),
	}
	for name, id := range outs {
		b.Output(name, id)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]logic.V, n.NumNets())
	for u := uint64(0); u < 4; u++ {
		xb, yb := u&1 == 1, u>>1&1 == 1
		vals[x], vals[y] = logic.FromBool(xb), logic.FromBool(yb)
		n.EvalOutputs(vals)
		want := map[string]bool{
			"c0": false, "c1": true, "buf": xb, "not": !xb,
			"and": xb && yb, "nand": !(xb && yb), "or": xb || yb,
			"nor": !(xb || yb), "xor": xb != yb, "xnor": xb == yb,
		}
		for name, id := range outs {
			if vals[id] != logic.FromBool(want[name]) {
				t.Errorf("inputs %v %v: %s = %v, want %v", xb, yb, name, vals[id], want[name])
			}
		}
	}
}

func TestBusHelpers(t *testing.T) {
	b := NewBuilder("bus")
	a := b.InputBus("a", 4)
	if len(a) != 4 {
		t.Fatal("bus width")
	}
	inv := make([]NetID, 4)
	for i, id := range a {
		inv[i] = b.Not(id)
	}
	b.NameBus("inv", inv)
	b.OutputBus("out", inv)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Bus("a")) != 4 || len(n.Bus("inv")) != 4 || len(n.Bus("out")) != 4 {
		t.Error("bus registration wrong")
	}
	if n.NetByName("a[2]") == NoNet {
		t.Error("bus bit naming wrong")
	}
	if n.Bus("missing") != nil {
		t.Error("missing bus should be nil")
	}
}

func TestDFFHelpers(t *testing.T) {
	b := NewBuilder("regs")
	d := b.Input("d")
	q1 := b.DFF(d)
	q3 := b.DFFChain(d, 3)
	same := b.DFFChain(d, 0)
	bus := b.RegisterBus([]NetID{d, q1})
	b.Output("q1", q1)
	b.Output("q3", q3)
	b.OutputBus("rb", bus)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if same != d {
		t.Error("DFFChain(0) should return input")
	}
	if n.NumDFFs() != 6 {
		t.Errorf("NumDFFs = %d, want 6", n.NumDFFs())
	}
	if n.NumCombinationalCells() != 0 {
		t.Error("no combinational cells expected")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	b := NewBuilder("cyclic")
	x := b.Input("x")
	// Build a, then patch a's input to form a combinational loop a->o->a.
	a := b.AddCell(And, "a", x, x)
	o := b.AddCell(Or, "o", a[0], x)
	// Manually rewire: a reads o.
	nl := b.n
	nl.Cells[0].In[1] = o[0]
	nl.Nets[o[0]].Sinks = append(nl.Nets[o[0]].Sinks, Pin{Cell: 0, Port: 1})
	// Remove stale sink record of x at (cell 0, port 1).
	sinks := nl.Nets[x].Sinks[:0]
	for _, s := range nl.Nets[x].Sinks {
		if !(s.Cell == 0 && s.Port == 1) {
			sinks = append(sinks, s)
		}
	}
	nl.Nets[x].Sinks = sinks
	err := nl.Validate()
	if err == nil || !strings.Contains(err.Error(), "combinational cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestSequentialLoopIsLegal(t *testing.T) {
	// A DFF in the loop makes it sequential: q = DFF(not q). Legal.
	b := NewBuilder("toggle")
	// Bootstrap: create DFF first with a placeholder input then rewire.
	x := b.Input("seed")
	nq := b.AddCell(Not, "inv", x)
	q := b.DFF(nq[0])
	nl := b.n
	// Rewire inverter to read q instead of seed.
	nl.Cells[0].In[0] = q
	nl.Nets[q].Sinks = append(nl.Nets[q].Sinks, Pin{Cell: 0, Port: 0})
	nl.Nets[x].Sinks = nil
	b.Output("q", q)
	n, err := b.Build()
	if err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
	if n.NumDFFs() != 1 {
		t.Fatal("dff count")
	}
}

func TestValidateCatchesUndrivenNet(t *testing.T) {
	b := NewBuilder("undriven")
	x := b.Input("x")
	floating := b.newNet("floating")
	b.AddCell(And, "", x, floating)
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "no driver") {
		t.Fatalf("expected undriven error, got %v", err)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := map[string]func(b *Builder){
		"bad pin count": func(b *Builder) { b.AddCell(And, "", b.Input("x")) },
		"dup net":       func(b *Builder) { b.Input("x"); b.Input("x") },
		"foreign net":   func(b *Builder) { b.Not(NetID(99)) },
		"after build": func(b *Builder) {
			b.Input("x")
			if _, err := b.Build(); err != nil {
				panic(err)
			}
			b.Input("y")
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f(NewBuilder("p"))
		}()
	}
}

func TestTopoOrderProperty(t *testing.T) {
	n, _ := buildXorFA(t)
	order := n.TopoOrder()
	if len(order) != n.NumCells() {
		t.Fatalf("order has %d cells, want %d", len(order), n.NumCells())
	}
	pos := make(map[CellID]int)
	for i, cid := range order {
		pos[cid] = i
	}
	for i := range n.Cells {
		c := &n.Cells[i]
		if c.Type == DFF {
			continue
		}
		for _, in := range c.In {
			d := n.Nets[in].Driver
			if d != NoCell && n.Cells[d].Type != DFF && pos[d] > pos[c.ID] {
				t.Errorf("cell %d before its fanin %d", c.ID, d)
			}
		}
	}
}

func TestArrivalTimesAndDepth(t *testing.T) {
	n, outs := buildXorFA(t)
	at := n.ArrivalTimes(func(*Cell, int) int { return 1 })
	// s = xor(xor(a,b),cin): depth 2. co = or(and, and(xor)): depth 3.
	if at[outs[0]] != 2 {
		t.Errorf("sum arrival = %d, want 2", at[outs[0]])
	}
	if at[outs[1]] != 3 {
		t.Errorf("cout arrival = %d, want 3", at[outs[1]])
	}
	if n.LogicDepth() != 3 {
		t.Errorf("depth = %d, want 3", n.LogicDepth())
	}
	// Weighted delays: xor twice as slow.
	cp := n.CriticalPathLength(func(c *Cell, _ int) int {
		if c.Type == Xor {
			return 2
		}
		return 1
	})
	// co path: xor(2) -> and(1) -> or(1) = 4; s path: xor+xor = 4.
	if cp != 4 {
		t.Errorf("weighted CP = %d, want 4", cp)
	}
}

func TestDFFCutsTiming(t *testing.T) {
	b := NewBuilder("cut")
	x := b.Input("x")
	y := b.Not(x)
	q := b.DFF(y)
	z := b.Not(q)
	b.Output("z", z)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.LogicDepth() != 1 {
		t.Errorf("depth = %d, want 1 (DFF must cut path)", n.LogicDepth())
	}
}

func TestWriteDOT(t *testing.T) {
	n, _ := buildXorFA(t)
	var sb strings.Builder
	if err := n.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "PI:a", "PO:", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestSummary(t *testing.T) {
	n, _ := buildXorFA(t)
	s := n.Summary()
	for _, want := range []string{"fa_gates", "5 cells", "xor", "depth 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q in %q", want, s)
		}
	}
}

func TestCellCounts(t *testing.T) {
	n, _ := buildXorFA(t)
	c := n.CellCounts()
	if c[Xor] != 2 || c[And] != 2 || c[Or] != 1 {
		t.Errorf("counts wrong: %v", c)
	}
}
