package netlist

import (
	"strings"
	"testing"
)

func buildSequentialSample(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("sample")
	x := b.InputBus("x", 2)
	s, co := b.FullAdder(x[0], x[1], b.Const(0))
	q := b.DFF(s)
	// Feedback: the FA (cell 1, after the const cell) reads q on its
	// carry-in instead of the constant.
	b.Rewire(1, 2, q)
	b.Output("s", s)
	b.Output("co", co)
	b.OutputBus("qq", []NetID{q})
	b.NameBus("internal", []NetID{s})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestJSONRoundTripExact(t *testing.T) {
	n := buildSequentialSample(t)
	var first strings.Builder
	if err := n.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(first.String()))
	if err != nil {
		t.Fatalf("read: %v\n%s", err, first.String())
	}
	if back.NumCells() != n.NumCells() || back.NumNets() != n.NumNets() {
		t.Fatalf("structure changed: %d/%d -> %d/%d",
			n.NumCells(), n.NumNets(), back.NumCells(), back.NumNets())
	}
	// Net names preserved -> a second serialization is byte-identical.
	var second strings.Builder
	if err := back.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("round trip not stable:\n--- first ---\n%s--- second ---\n%s",
			first.String(), second.String())
	}
	// Buses survive.
	if len(back.Bus("qq")) != 1 || len(back.Bus("internal")) != 1 || len(back.Bus("x")) != 2 {
		t.Error("buses lost")
	}
	if back.NumDFFs() != 1 {
		t.Error("dff lost")
	}
}

func TestJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{]`,
		"unknown field": `{"name":"x","bogus":1}`,
		"unknown type":  `{"name":"x","inputs":["a"],"cells":[{"type":"frob","in":["a"],"out":["z"]}],"outputs":["z"]}`,
		"bad outputs":   `{"name":"x","inputs":["a"],"cells":[{"type":"not","in":["a"],"out":["z","w"]}],"outputs":["z"]}`,
		"bad inputs":    `{"name":"x","inputs":["a"],"cells":[{"type":"and","in":["a"],"out":["z"]}],"outputs":["z"]}`,
		"double driver": `{"name":"x","inputs":["a"],"cells":[{"type":"not","in":["a"],"out":["z"]},{"type":"buf","in":["a"],"out":["z"]}],"outputs":["z"]}`,
		"unknown out":   `{"name":"x","inputs":["a"],"cells":[],"outputs":["z"]}`,
		"unknown bus":   `{"name":"x","inputs":["a"],"cells":[],"outputs":["a"],"buses":{"b":["zz"]}}`,
		"dup input":     `{"name":"x","inputs":["a","a"],"cells":[],"outputs":["a"]}`,
		"dangling in":   `{"name":"x","inputs":["a"],"cells":[{"type":"not","in":["ghost"],"out":["z"]}],"outputs":["z"]}`,
	}
	for name, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestJSONMinimal(t *testing.T) {
	src := `{"name":"pass","inputs":["a"],"cells":[{"type":"buf","in":["a"],"out":["z"]}],"outputs":["z"]}`
	n, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "pass" || n.NumCells() != 1 {
		t.Error("minimal netlist wrong")
	}
	if n.NetByName("z") == NoNet {
		t.Error("output net name not restored")
	}
}

func TestRenameNet(t *testing.T) {
	b := NewBuilder("r")
	x := b.Input("x")
	y := b.Not(x)
	b.RenameNet(y, "inverted")
	b.Output("o", y)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.NetByName("inverted") != y || n.NetByName("n0") != NoNet {
		t.Error("rename did not update the index")
	}
}

func TestRenameNetPanics(t *testing.T) {
	for name, f := range map[string]func(b *Builder){
		"dup":   func(b *Builder) { b.RenameNet(b.Input("x"), "y"); _ = b.Input("y") },
		"empty": func(b *Builder) { b.RenameNet(b.Input("x"), "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			b := NewBuilder("p")
			y := b.Input("y")
			_ = y
			f(b)
			b.RenameNet(b.n.PIs[len(b.n.PIs)-1], "y")
		}()
	}
}
