package glitchsim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/netlist"
)

// measureFor runs one measurement through a fresh engine and returns the
// detailed counter (partial on a checkpointed stop, alongside the error).
func measureFor(t *testing.T, n *netlist.Netlist, cfg Config) (*core.Counter, error) {
	t.Helper()
	return NewEngine().MeasureDetailed(context.Background(), MeasureRequest{Netlist: n, Config: cfg})
}

// sameCounters asserts two detailed counters agree net for net — the
// bit-identical contract of checkpointed/resumed measurement.
func sameCounters(t *testing.T, label string, got, want *core.Counter, n *netlist.Netlist) {
	t.Helper()
	if got.Cycles() != want.Cycles() {
		t.Fatalf("%s: cycles = %d, want %d", label, got.Cycles(), want.Cycles())
	}
	for net := 0; net < n.NumNets(); net++ {
		id := netlist.NetID(net)
		if g, w := got.Stats(id), want.Stats(id); g != w {
			t.Fatalf("%s: net %d stats = %+v, want %+v", label, net, g, w)
		}
	}
}

// TestResume is the interrupted-at-every-chunk-boundary equivalence
// suite: for each circuit × delay model, a measurement is stopped at
// every possible chunk boundary, serialized through JSON (the exact
// path a persisted job checkpoint takes), resumed, and the resumed
// counter compared net-for-net against an uninterrupted run.
func TestResume(t *testing.T) {
	circuits := []struct {
		name  string
		build func() *netlist.Netlist
	}{
		{"rca8", func() *netlist.Netlist { return NewRCA(8) }},
		{"wallace4", func() *netlist.Netlist { return NewWallaceMultiplier(4) }},
		{"dirdet4", func() *netlist.Netlist { return NewDirectionDetector(4, true) }},
	}
	models := []struct {
		name     string
		delay    delay.Model
		inertial bool
	}{
		{"unit", nil, false},                          // lockstep kernel
		{"fa-2-1", delay.FullAdderRatio(2, 1), false}, // wide-event kernel
		{"typical-inertial", delay.Typical(), true},   // wide-event, inertial
	}
	// Cycles=37 over 8 lanes gives uneven quotas [5×5, 4×3]: boundaries
	// 1..4 include the lane-retirement step, so resume is exercised both
	// before and after lanes go idle.
	const cycles, lanes = 37, 8
	for _, c := range circuits {
		for _, m := range models {
			t.Run(c.name+"/"+m.name, func(t *testing.T) {
				n := c.build()
				base := Config{Cycles: cycles, Lanes: lanes, Seed: 5, Delay: m.delay, Inertial: m.inertial}
				want, err := measureFor(t, n, base)
				if err != nil {
					t.Fatalf("uninterrupted run: %v", err)
				}
				maxQ := (cycles + lanes - 1) / lanes
				for kill := 1; kill < maxQ; kill++ {
					var captured *MeasureCheckpoint
					cfg := base
					cfg.CheckpointEvery = 1
					cfg.CheckpointSink = func(cp *MeasureCheckpoint) error {
						if cp.Cycle == kill {
							captured = cp
							return ErrStopAtCheckpoint
						}
						return nil
					}
					partial, err := measureFor(t, n, cfg)
					if !errors.Is(err, ErrCheckpointed) {
						t.Fatalf("kill@%d: err = %v, want ErrCheckpointed", kill, err)
					}
					var stopped *CheckpointedError
					if !errors.As(err, &stopped) || stopped.Cycle != kill || stopped.Total != maxQ {
						t.Fatalf("kill@%d: stop = %+v, want cycle %d of %d", kill, stopped, kill, maxQ)
					}
					if captured == nil {
						t.Fatalf("kill@%d: sink never saw its checkpoint", kill)
					}
					if partial == nil || partial.Cycles() >= want.Cycles() {
						t.Fatalf("kill@%d: partial counter covers %v cycles, want a strict prefix", kill, partial)
					}
					// Round-trip the checkpoint through JSON — exactly what
					// the job store does to it — before resuming.
					data, err := json.Marshal(captured)
					if err != nil {
						t.Fatalf("kill@%d: marshal: %v", kill, err)
					}
					decoded := new(MeasureCheckpoint)
					if err := json.Unmarshal(data, decoded); err != nil {
						t.Fatalf("kill@%d: unmarshal: %v", kill, err)
					}
					resumeCfg := base
					resumeCfg.Resume = decoded
					got, err := measureFor(t, n, resumeCfg)
					if err != nil {
						t.Fatalf("kill@%d: resumed run: %v", kill, err)
					}
					sameCounters(t, fmt.Sprintf("kill@%d", kill), got, want, n)
				}
			})
		}
	}
}

// TestResumeChunkedEqualsPlain pins that a run taking checkpoints it is
// never stopped at (and one whose chunk size exceeds the run) is
// bit-identical to a run taking none: boundaries only observe.
func TestResumeChunkedEqualsPlain(t *testing.T) {
	n := NewRCA(8)
	base := Config{Cycles: 48, Lanes: 8, Seed: 9}
	want, err := measureFor(t, n, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, every := range []int{1, 2, 100} {
		sinkCalls := 0
		cfg := base
		cfg.CheckpointEvery = every
		cfg.CheckpointSink = func(cp *MeasureCheckpoint) error {
			sinkCalls++
			if err := cp.Verify(); err != nil {
				return err
			}
			return nil
		}
		got, err := measureFor(t, n, cfg)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		sameCounters(t, fmt.Sprintf("every=%d", every), got, want, n)
		if every >= 6 && sinkCalls != 0 {
			t.Fatalf("every=%d: %d sink calls on a run of 6 steps, want 0", every, sinkCalls)
		}
	}
}

// TestResumeRejectsMismatch: a checkpoint offered to the wrong
// measurement — different seed, circuit, delay model, or a tampered
// payload — is refused with ErrCheckpointMismatch.
func TestResumeRejectsMismatch(t *testing.T) {
	n := NewRCA(8)
	base := Config{Cycles: 32, Lanes: 8, Seed: 5}
	var captured *MeasureCheckpoint
	cfg := base
	cfg.CheckpointEvery = 2
	cfg.CheckpointSink = func(cp *MeasureCheckpoint) error {
		captured = cp
		return ErrStopAtCheckpoint
	}
	if _, err := measureFor(t, n, cfg); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("capture run: %v, want ErrCheckpointed", err)
	}

	reencode := func(mutate func(cp *MeasureCheckpoint)) *MeasureCheckpoint {
		cp := *captured
		mutate(&cp)
		// Re-seal so only the semantic mismatch (not the checksum) trips.
		if err := cp.seal(); err != nil {
			t.Fatal(err)
		}
		return &cp
	}
	cases := []struct {
		name string
		cfg  Config
		cp   *MeasureCheckpoint
	}{
		{"different seed", Config{Cycles: 32, Lanes: 8, Seed: 6}, captured},
		{"different cycles", Config{Cycles: 40, Lanes: 8, Seed: 5}, captured},
		{"different delay", Config{Cycles: 32, Lanes: 8, Seed: 5, Delay: delay.FullAdderRatio(2, 1)}, captured},
		{"different mode", Config{Cycles: 32, Lanes: 8, Seed: 5, Delay: delay.FullAdderRatio(2, 1), Inertial: true}, captured},
		{"tampered net state", base, func() *MeasureCheckpoint {
			cp := *captured
			cp.NetState = append([]byte(nil), cp.NetState...)
			cp.NetState[0] ^= 0xff
			return &cp // checksum no longer matches
		}()},
		{"forged cycle", base, reencode(func(cp *MeasureCheckpoint) { cp.Cycle = 1 << 20 })},
		{"missing counter", base, reencode(func(cp *MeasureCheckpoint) { cp.Counter = nil })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resumeCfg := tc.cfg
			resumeCfg.Resume = tc.cp
			if _, err := measureFor(t, n, resumeCfg); !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("resume = %v, want ErrCheckpointMismatch", err)
			}
		})
	}

	t.Run("wrong circuit", func(t *testing.T) {
		resumeCfg := base
		resumeCfg.Resume = captured
		if _, err := measureFor(t, NewRCA(16), resumeCfg); !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("resume onto rca16 = %v, want ErrCheckpointMismatch", err)
		}
	})
}

// TestCheckpointUnsupportedSingleStream: checkpointing needs the
// lane-decomposed path; single-stream configurations refuse rather than
// silently running without checkpoints.
func TestCheckpointUnsupportedSingleStream(t *testing.T) {
	n := NewRCA(8)
	cfg := Config{Cycles: 32, Lanes: 1, Seed: 5, CheckpointEvery: 4,
		CheckpointSink: func(*MeasureCheckpoint) error { return nil }}
	if _, err := measureFor(t, n, cfg); !errors.Is(err, ErrCheckpointUnsupported) {
		t.Fatalf("Lanes=1 checkpointed measure = %v, want ErrCheckpointUnsupported", err)
	}
	cfg.CheckpointEvery = 0
	cfg.Resume = &MeasureCheckpoint{}
	if _, err := measureFor(t, n, cfg); !errors.Is(err, ErrCheckpointUnsupported) {
		t.Fatalf("Lanes=1 resumed measure = %v, want ErrCheckpointUnsupported", err)
	}
}

// TestResumeSinkErrorAborts: a sink failure that is not
// ErrStopAtCheckpoint aborts the measurement with the sink's error.
func TestResumeSinkErrorAborts(t *testing.T) {
	n := NewRCA(8)
	boom := errors.New("disk full")
	cfg := Config{Cycles: 32, Lanes: 8, Seed: 5, CheckpointEvery: 1,
		CheckpointSink: func(*MeasureCheckpoint) error { return boom }}
	if _, err := measureFor(t, n, cfg); !errors.Is(err, boom) {
		t.Fatalf("sink failure = %v, want wrapped %v", err, boom)
	}
}
