module glitchsim

go 1.24
