package glitchsim

// Sequential-subsystem tests at the public-measurement layer: DFF
// netlists must survive both interchange formats fingerprint-exact, the
// default warm-up must scale with register depth, lane decomposition
// must stay bit-identical to merged scalar runs on circuits with
// feedback and pipeline state, and Figure 10 must anchor its sweep to
// the actual sequential subject measured before retiming.

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/registry"
	"glitchsim/internal/retime"
	"glitchsim/internal/sim"
	"glitchsim/netlist"
	"glitchsim/verilog"
)

var sequentialRegistry = []string{"pipemult8", "accum16", "accum16cg"}

func buildRegistry(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	nl, err := registry.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestDFFRoundTrip: every sequential registry circuit round-trips
// through Verilog and JSON fingerprint-exact — DFF cells, feedback
// wiring, PI/PO order and buses included.
func TestDFFRoundTrip(t *testing.T) {
	for _, name := range sequentialRegistry {
		nl := buildRegistry(t, name)
		if nl.NumDFFs() == 0 {
			t.Fatalf("%s: expected DFF cells", name)
		}

		var sb strings.Builder
		if err := verilog.Write(&sb, nl); err != nil {
			t.Fatalf("%s: verilog write: %v", name, err)
		}
		fromV, err := verilog.Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: verilog parse: %v", name, err)
		}
		if got, want := fromV.Fingerprint(), nl.Fingerprint(); got != want {
			t.Errorf("%s: verilog round trip changed fingerprint:\n  want %s\n  got  %s", name, want, got)
		}
		if fromV.NumDFFs() != nl.NumDFFs() {
			t.Errorf("%s: verilog round trip: %d DFFs, want %d", name, fromV.NumDFFs(), nl.NumDFFs())
		}

		var buf bytes.Buffer
		if err := nl.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: json write: %v", name, err)
		}
		fromJ, err := netlist.ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: json read: %v", name, err)
		}
		if got, want := fromJ.Fingerprint(), nl.Fingerprint(); got != want {
			t.Errorf("%s: json round trip changed fingerprint:\n  want %s\n  got  %s", name, want, got)
		}
	}
}

// TestSequentialLevels: the register-depth metric behind the warm-up
// default. The accumulators' self-loops must not diverge; their carry
// chain q[0]→q[15] is the depth that counts.
func TestSequentialLevels(t *testing.T) {
	for name, want := range map[string]int{
		"rca16":     0,  // combinational
		"dirdet8r":  1,  // input registers only
		"pipemult8": 4,  // 3 stage cuts + output register
		"accum16":   16, // carry chain across the feedback registers
		"accum16cg": 16,
	} {
		if got := buildRegistry(t, name).SequentialLevels(); got != want {
			t.Errorf("%s: SequentialLevels = %d, want %d", name, got, want)
		}
	}
}

// TestSequentialWarmupDefault: the default warm-up stays at 8 for
// shallow circuits (keeping historical numbers) and grows to
// SequentialLevels+1 on deeper pipelines; explicit values always win.
func TestSequentialWarmupDefault(t *testing.T) {
	for name, want := range map[string]int{
		"rca16":     8,
		"dirdet8r":  8,
		"pipemult8": 8,
		"accum16":   17,
	} {
		nl := buildRegistry(t, name)
		if got := (Config{}).withDefaults(nl).Warmup; got != want {
			t.Errorf("%s: default warmup = %d, want %d", name, got, want)
		}
	}
	nl := buildRegistry(t, "accum16")
	if got := (Config{Warmup: 3}).withDefaults(nl).Warmup; got != 3 {
		t.Errorf("explicit warmup overridden: got %d, want 3", got)
	}
	if got := (Config{Warmup: ExplicitZero}).withDefaults(nl).Warmup; got != 0 {
		t.Errorf("ExplicitZero warmup overridden: got %d, want 0", got)
	}
}

// TestSequentialMeasureLanes: the full Measure-layer lane decomposition
// on sequential circuits — per-lane register state, warm-up flushes and
// quota retirement — must be bit-identical to measuring the lanes one
// stream at a time, under uniform (lockstep kernel) and non-uniform
// (wide-event kernel) delay models.
func TestSequentialMeasureLanes(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name    string
		circuit string
		cycles  int
		lanes   int
		dm      delay.Model
	}{
		{"pipemult8-unit-64", "pipemult8", 80, 64, delay.Unit()},
		{"pipemult8-faratio-64", "pipemult8", 60, 64, delay.FullAdderRatio(2, 1)},
		{"accum16-unit-64", "accum16", 80, 64, delay.Unit()},
		{"accum16-typical-23", "accum16", 70, 23, delay.Typical()},
		{"accum16cg-faratio-64", "accum16cg", 60, 64, delay.FullAdderRatio(3, 1)},
	} {
		nl := buildRegistry(t, tc.circuit)
		c := sim.Compile(nl)
		cfg := Config{Cycles: tc.cycles, Seed: 9, Delay: tc.dm}.withDefaults(nl)

		lanes := tc.lanes
		if cfg.Cycles < lanes {
			lanes = cfg.Cycles
		}
		seeds := laneSeeds(cfg.Seed, lanes)
		quotas := laneQuotas(cfg.Cycles, lanes)

		wide, err := measureWide(ctx, c, cfg, lanes)
		if err != nil {
			t.Fatalf("%s: wide: %v", tc.name, err)
		}

		var agg *core.Counter
		for l, seed := range seeds {
			lcfg := cfg
			lcfg.Seed = seed
			lcfg.Cycles = quotas[l]
			lcfg.Source = nil
			lcfg = lcfg.withDefaults(nl)
			counter, err := measureStream(ctx, c, lcfg)
			if err != nil {
				t.Fatalf("%s: scalar lane %d: %v", tc.name, l, err)
			}
			if agg == nil {
				agg = counter
			} else if err := agg.Merge(counter); err != nil {
				t.Fatal(err)
			}
		}

		if wide.Cycles() != agg.Cycles() || wide.Cycles() != tc.cycles {
			t.Fatalf("%s: cycles wide=%d scalar=%d want %d", tc.name, wide.Cycles(), agg.Cycles(), tc.cycles)
		}
		for i := 0; i < nl.NumNets(); i++ {
			id := netlist.NetID(i)
			if got, want := wide.Stats(id), agg.Stats(id); got != want {
				t.Fatalf("%s: net %s stats differ\nwide:   %+v\nscalar: %+v", tc.name, nl.Nets[i].Name, got, want)
			}
		}
	}
}

// TestSequentialFigure10BeforeAfter: Figure 10 now reports the actual
// sequential subject measured before retiming. The before row is golden
// against an independent MeasurePower of the unretimed netlist, the
// sweep points are bit-identical to the historical package-level
// Figure10, and the session stream carries before as row 0 of
// targets+1.
func TestSequentialFigure10BeforeAfter(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	req := ExperimentRequest{Cycles: 100, Seed: 1}
	res, err := e.Figure10(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Subject != "dirdet8r" {
		t.Errorf("subject = %q, want dirdet8r", res.Subject)
	}
	b := res.Before
	if b.Circuit != 0 || b.TargetPeriod != 0 || b.Latency != 0 {
		t.Errorf("before row not anchored at circuit 0: %+v", b)
	}

	// Golden: the before row is the unretimed subject, measured with the
	// ordinary power path under the default (sequential-aware) warm-up.
	base := buildRegistry(t, "dirdet8r")
	bd, act, err := e.MeasurePower(ctx, MeasureRequest{Netlist: base, Config: Config{Cycles: req.Cycles, Seed: req.Seed}})
	if err != nil {
		t.Fatal(err)
	}
	if b.FFs != bd.NumFFs || b.FFs != 48 {
		t.Errorf("before FFs = %d (breakdown %d), want 48", b.FFs, bd.NumFFs)
	}
	if b.TotalMW != bd.TotalW()*1e3 || b.LogicMW != bd.LogicW*1e3 || b.LOverF != act.LOverF() {
		t.Errorf("before row diverges from direct measurement:\nrow:    %+v\npower:  %+v", b, bd)
	}
	if want := retime.FromNetlist(base, delay.Unit(), 0).ClockPeriod(nil); b.Period != want {
		t.Errorf("before period = %d, want critical path %d", b.Period, want)
	}

	// Historical shape: the deprecated wrapper still returns exactly the
	// sweep points.
	rows, err := Figure10(nil, req.Cycles, req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(res.Points) {
		t.Fatalf("package Figure10 returned %d rows, engine sweep %d", len(rows), len(res.Points))
	}
	for i := range rows {
		if rows[i] != res.Points[i] {
			t.Errorf("point %d differs between package and engine forms:\n%+v\n%+v", i, rows[i], res.Points[i])
		}
	}

	// Session stream: before is row 0 of targets+1, sweep rows follow.
	// The callback tap runs on the sweep's worker goroutines.
	var mu sync.Mutex
	var events []Event
	sess := e.NewSessionFunc(ctx, func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	defer sess.Close()
	sres, err := sess.Figure10(req)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Before != res.Before {
		t.Errorf("session before row differs from engine run")
	}
	wantTotal := len(res.Points) + 1
	if len(events) != wantTotal {
		t.Fatalf("session emitted %d events, want %d", len(events), wantTotal)
	}
	seen := make(map[int]bool)
	for _, ev := range events {
		if ev.Kind != EventRow || ev.Total != wantTotal || ev.Row == nil {
			t.Fatalf("unexpected event %+v", ev)
		}
		seen[ev.Index] = true
		if ev.Index == 0 && *ev.Row != res.Before {
			t.Errorf("event 0 is not the before row: %+v", *ev.Row)
		}
	}
	if len(seen) != wantTotal {
		t.Errorf("event indices not distinct: %v", seen)
	}
}
