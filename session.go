package glitchsim

import (
	"context"
	"sync"

	"glitchsim/internal/core"
	"glitchsim/internal/power"
)

// EventKind classifies a Session progress event.
type EventKind string

const (
	// EventSeed reports one finished per-seed measurement of a seed
	// sweep; Index is the position in the request's seed list.
	EventSeed EventKind = "seed"
	// EventRow reports one finished row of an experiment (a multiplier
	// spec of Table 1/2, a retimed variant of Table 3 / Figure 10, a
	// batch job of MeasureMany).
	EventRow EventKind = "row"
	// EventResult carries the final summarized activity of a completed
	// measurement.
	EventResult EventKind = "result"
)

// Event is one progress update streamed from a Session: per-seed and
// per-row completions as a sweep runs, then a final result. Exactly one
// of the payload pointers is set, matching Kind. Events arrive in
// completion order, which under a parallel sweep is not index order —
// Index/Total position the event within its request.
type Event struct {
	Kind  EventKind
	Index int
	Total int
	// Activity is set on EventSeed and EventResult and on EventRow for
	// batch jobs.
	Activity *Activity
	// Mult is set on EventRow for Table 1/2 rows.
	Mult *MultRow
	// Row is set on EventRow for Table 3 / Figure 10 rows.
	Row *Table3Row
	// Err reports a failed row/seed; the stream continues with the
	// remaining items.
	Err error
}

// Session is one logical measurement conversation with an Engine: it
// binds a context to a stream of progress events. Session methods block
// like their Engine counterparts and return the same typed results, but
// additionally publish an Event per completed seed/row to Events() — the
// feed a service streams to its client as NDJSON, or a TUI renders as a
// progress bar.
//
// A Session is single-conversation state: its methods may be called from
// one goroutine at a time (the Events channel is meant to be consumed
// from another). Close releases the session's context resources and
// closes the event channel; call it once no method is running, typically
// via defer.
type Session struct {
	e      *Engine
	ctx    context.Context
	cancel context.CancelFunc
	events chan Event
	fn     func(Event) // callback tap (NewSessionFunc); nil = channel mode
	once   sync.Once
}

// NewSession starts a measurement session whose lifetime is bounded by
// ctx. Cancelling ctx (or calling Close) aborts any in-flight session
// method promptly.
func (e *Engine) NewSession(ctx context.Context) *Session {
	ctx, cancel := context.WithCancel(ctx)
	return &Session{
		e:      e,
		ctx:    ctx,
		cancel: cancel,
		events: make(chan Event, 64),
	}
}

// NewSessionFunc starts a session that delivers its progress events to
// fn instead of the Events channel — the tap an asynchronous job layer
// records progress through without dedicating a consumer goroutine per
// job. fn is called synchronously from the measurement's worker
// goroutines, possibly concurrently; it must be safe for concurrent use
// and return quickly (a slow tap stalls the sweep that called it). The
// Events channel of a func session carries nothing and is closed by
// Close as usual.
func (e *Engine) NewSessionFunc(ctx context.Context, fn func(Event)) *Session {
	s := e.NewSession(ctx)
	s.fn = fn
	return s
}

// Events returns the session's progress stream. The channel is closed by
// Close. Consumers that fall behind exert backpressure on the producing
// sweep (the channel is buffered but bounded); a consumer that stops
// reading entirely must cancel the session's context to release it.
// Sessions created with NewSessionFunc deliver to their callback
// instead; their channel never carries events.
func (s *Session) Events() <-chan Event { return s.events }

// Context returns the session's context, the one every session method
// measures under.
func (s *Session) Context() context.Context { return s.ctx }

// Close cancels the session's context and closes the event stream. It
// must not be called while a session method is still running (wait for
// the method to return first; cancel the context to force that).
func (s *Session) Close() {
	s.cancel()
	s.once.Do(func() { close(s.events) })
}

// emit publishes an event: synchronously to the callback of a
// NewSessionFunc session, otherwise onto the channel — dropping it only
// when the session is cancelled (so a vanished consumer cannot wedge
// the measurement pool).
func (s *Session) emit(ev Event) {
	if s.fn != nil {
		s.fn(ev)
		return
	}
	select {
	case s.events <- ev:
	case <-s.ctx.Done():
	}
}

// Measure measures one request and emits the summarized activity as an
// EventResult.
func (s *Session) Measure(req MeasureRequest) (Activity, error) {
	act, err := s.e.Measure(s.ctx, req)
	if err != nil {
		return act, err
	}
	s.emit(Event{Kind: EventResult, Total: 1, Activity: &act})
	return act, nil
}

// MeasurePower measures one request with the power model and emits the
// summarized activity as an EventResult, so a streaming power request
// carries the same event shape as a plain one.
func (s *Session) MeasurePower(req MeasureRequest) (power.Breakdown, Activity, error) {
	bd, act, err := s.e.MeasurePower(s.ctx, req)
	if err != nil {
		return bd, act, err
	}
	s.emit(Event{Kind: EventResult, Total: 1, Activity: &act})
	return bd, act, nil
}

// MeasureMany measures the batch, emitting an EventRow per finished job
// in completion order.
func (s *Session) MeasureMany(req BatchRequest) ([]MeasureResult, error) {
	total := len(req.Jobs)
	return s.e.measureMany(s.ctx, req.Jobs, req.Workers, func(i int, r *MeasureResult) {
		ev := Event{Kind: EventRow, Index: i, Total: total, Err: r.Err}
		if r.Err == nil {
			act := r.Activity
			ev.Activity = &act
		}
		s.emit(ev)
	})
}

// MeasureSeeds runs the seed sweep, emitting an EventSeed per finished
// seed in completion order and an EventResult with the merged aggregate.
func (s *Session) MeasureSeeds(req SeedSweepRequest) (*core.Counter, error) {
	total := len(req.Seeds)
	agg, name, err := s.e.measureSeeds(s.ctx, req, func(i int, r *MeasureResult) {
		ev := Event{Kind: EventSeed, Index: i, Total: total, Err: r.Err}
		if r.Err == nil {
			act := r.Activity
			ev.Activity = &act
		}
		s.emit(ev)
	})
	if err != nil {
		return nil, err
	}
	act := summarize(name, agg)
	s.emit(Event{Kind: EventResult, Total: 1, Activity: &act})
	return agg, nil
}

// Table1 runs the Table 1 experiment, emitting an EventRow per finished
// multiplier measurement.
func (s *Session) Table1(req ExperimentRequest) ([]MultRow, error) {
	specs := table1Specs()
	return s.e.measureMultipliers(s.ctx, specs, req, s.emitMultRow(len(specs)))
}

// Table2 runs the Table 2 experiment, emitting an EventRow per finished
// multiplier measurement.
func (s *Session) Table2(req ExperimentRequest) ([]MultRow, error) {
	specs := table2Specs()
	return s.e.measureMultipliers(s.ctx, specs, req, s.emitMultRow(len(specs)))
}

func (s *Session) emitMultRow(total int) func(int, *MultRow) {
	return func(i int, row *MultRow) {
		r := *row
		s.emit(Event{Kind: EventRow, Index: i, Total: total, Mult: &r})
	}
}

// Table3 runs the Table 3 experiment, emitting an EventRow per finished
// retimed variant.
func (s *Session) Table3(req ExperimentRequest) ([]Table3Row, error) {
	return s.powerSweepSession(req, (*Engine).table3Targets)
}

// Figure10 runs the Figure 10 experiment: the unretimed subject is
// measured first and emitted as EventRow 0, then the retimed sweep
// points follow at Index i+1 (completion order). Total counts the
// before row plus every sweep point.
func (s *Session) Figure10(req ExperimentRequest) (Fig10Result, error) {
	plan, err := s.e.figure10Targets(req)
	if err != nil {
		return Fig10Result{}, err
	}
	total := len(plan.targets) + 1
	before, err := s.e.measureUnretimed(s.ctx, plan.base, plan.dm, req)
	if err != nil {
		return Fig10Result{}, err
	}
	b := before
	s.emit(Event{Kind: EventRow, Index: 0, Total: total, Row: &b})
	points, err := s.e.powerSweep(s.ctx, plan.base, plan.dm, plan.targets, plan.maxLatency, req, func(i int, row *Table3Row) {
		r := *row
		s.emit(Event{Kind: EventRow, Index: i + 1, Total: total, Row: &r})
	})
	if err != nil {
		return Fig10Result{}, err
	}
	return Fig10Result{Subject: plan.base.Name, Before: before, Points: points}, nil
}

// powerSweepSession shares the retime-and-measure sweep between the
// Table3 and Figure10 session methods.
func (s *Session) powerSweepSession(req ExperimentRequest, targets func(*Engine, ExperimentRequest) (sweepPlan, error)) ([]Table3Row, error) {
	plan, err := targets(s.e, req)
	if err != nil {
		return nil, err
	}
	total := len(plan.targets)
	return s.e.powerSweep(s.ctx, plan.base, plan.dm, plan.targets, plan.maxLatency, req, func(i int, row *Table3Row) {
		r := *row
		s.emit(Event{Kind: EventRow, Index: i, Total: total, Row: &r})
	})
}
